#include "stream/stream_builder.h"

#include <unordered_set>

#include "util/logging.h"

namespace qikey {

namespace {

Dataset RowsToDataset(const Schema& schema,
                      const std::vector<uint32_t>& cardinalities,
                      const std::vector<std::vector<ValueCode>>& rows) {
  const size_t m = schema.num_attributes();
  std::vector<Column> columns;
  columns.reserve(m);
  for (size_t j = 0; j < m; ++j) {
    std::vector<ValueCode> codes;
    codes.reserve(rows.size());
    for (const auto& row : rows) codes.push_back(row[j]);
    columns.emplace_back(std::move(codes), cardinalities[j]);
  }
  return Dataset(schema, std::move(columns));
}

}  // namespace

StreamingSketchBuilder::StreamingSketchBuilder(
    Schema schema, std::vector<uint32_t> cardinalities, uint64_t num_pairs,
    uint64_t small_cutoff, Rng* rng)
    : schema_(std::move(schema)),
      cardinalities_(std::move(cardinalities)),
      reservoir_(num_pairs, rng),
      small_cutoff_(small_cutoff) {
  QIKEY_CHECK(schema_.num_attributes() == cardinalities_.size());
}

Status StreamingSketchBuilder::Offer(const std::vector<ValueCode>& row) {
  if (row.size() != schema_.num_attributes()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  uint64_t pos = reservoir_.seen();
  if (reservoir_.Offer()) {
    payloads_[pos] = row;
  }
  if (payloads_.size() >= next_gc_) {
    CollectGarbage();
    next_gc_ = std::max<uint64_t>(4 * reservoir_.num_slots(), 1024);
    next_gc_ += payloads_.size();
  }
  return Status::OK();
}

void StreamingSketchBuilder::CollectGarbage() {
  std::unordered_set<uint64_t> live;
  live.reserve(2 * reservoir_.num_slots());
  for (const auto& [a, b] : reservoir_.pairs()) {
    live.insert(a);
    live.insert(b);
  }
  for (auto it = payloads_.begin(); it != payloads_.end();) {
    if (live.count(it->first) == 0) {
      it = payloads_.erase(it);
    } else {
      ++it;
    }
  }
}

Result<NonSeparationSketch> StreamingSketchBuilder::Finish() && {
  if (reservoir_.seen() < 2) {
    return Status::InvalidArgument("stream had fewer than two rows");
  }
  CollectGarbage();
  const uint32_t m = static_cast<uint32_t>(schema_.num_attributes());
  std::vector<ValueCode> codes;
  codes.reserve(2 * reservoir_.num_slots() * m);
  for (const auto& [a, b] : reservoir_.pairs()) {
    auto ia = payloads_.find(a);
    auto ib = payloads_.find(b);
    QIKEY_CHECK(ia != payloads_.end() && ib != payloads_.end())
        << "payload lost for a sampled position";
    codes.insert(codes.end(), ia->second.begin(), ia->second.end());
    codes.insert(codes.end(), ib->second.begin(), ib->second.end());
  }
  uint64_t n = reservoir_.seen();
  uint64_t total_pairs = (n % 2 == 0) ? (n / 2) * (n - 1) : n * ((n - 1) / 2);
  return NonSeparationSketch::FromMaterializedPairs(
      m, total_pairs, small_cutoff_, std::move(codes));
}

StreamingTupleFilterBuilder::StreamingTupleFilterBuilder(
    Schema schema, std::vector<uint32_t> cardinalities, uint64_t sample_size,
    Rng* rng)
    : schema_(std::move(schema)),
      cardinalities_(std::move(cardinalities)),
      reservoir_(sample_size, rng) {
  QIKEY_CHECK(schema_.num_attributes() == cardinalities_.size());
}

Status StreamingTupleFilterBuilder::Offer(const std::vector<ValueCode>& row) {
  if (row.size() != schema_.num_attributes()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  reservoir_.Offer(row);
  return Status::OK();
}

Result<TupleSampleFilter> StreamingTupleFilterBuilder::Finish(
    DuplicateDetection detection) && {
  if (reservoir_.seen() < 2) {
    return Status::InvalidArgument("stream had fewer than two rows");
  }
  Dataset sample =
      RowsToDataset(schema_, cardinalities_, reservoir_.items());
  return TupleSampleFilter::FromSample(std::move(sample), {}, detection);
}

StreamingPairFilterBuilder::StreamingPairFilterBuilder(
    Schema schema, std::vector<uint32_t> cardinalities, uint64_t num_pairs,
    Rng* rng)
    : schema_(std::move(schema)),
      cardinalities_(std::move(cardinalities)),
      reservoir_(num_pairs, rng) {
  QIKEY_CHECK(schema_.num_attributes() == cardinalities_.size());
}

Status StreamingPairFilterBuilder::Offer(const std::vector<ValueCode>& row) {
  if (row.size() != schema_.num_attributes()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  uint64_t pos = reservoir_.seen();  // position this row will occupy
  if (reservoir_.Offer()) {
    payloads_[pos] = row;
  }
  if (payloads_.size() >= next_gc_) {
    CollectGarbage();
    next_gc_ = std::max<uint64_t>(2 * reservoir_.num_slots() * 2, 1024);
    next_gc_ += payloads_.size();
  }
  return Status::OK();
}

void StreamingPairFilterBuilder::CollectGarbage() {
  std::unordered_set<uint64_t> live;
  live.reserve(2 * reservoir_.num_slots());
  for (const auto& [a, b] : reservoir_.pairs()) {
    live.insert(a);
    live.insert(b);
  }
  for (auto it = payloads_.begin(); it != payloads_.end();) {
    if (live.count(it->first) == 0) {
      it = payloads_.erase(it);
    } else {
      ++it;
    }
  }
}

Result<MxPairFilter> StreamingPairFilterBuilder::Finish() && {
  if (reservoir_.seen() < 2) {
    return Status::InvalidArgument("stream had fewer than two rows");
  }
  CollectGarbage();
  std::vector<std::vector<ValueCode>> rows;
  rows.reserve(2 * reservoir_.num_slots());
  for (const auto& [a, b] : reservoir_.pairs()) {
    auto ia = payloads_.find(a);
    auto ib = payloads_.find(b);
    QIKEY_CHECK(ia != payloads_.end() && ib != payloads_.end())
        << "payload lost for a sampled position";
    rows.push_back(ia->second);
    rows.push_back(ib->second);
  }
  Dataset pair_table = RowsToDataset(schema_, cardinalities_, rows);
  return MxPairFilter::FromMaterializedPairs(std::move(pair_table));
}

}  // namespace qikey
