#ifndef QIKEY_STREAM_PAIR_RESERVOIR_H_
#define QIKEY_STREAM_PAIR_RESERVOIR_H_

#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace qikey {

/// \brief One-pass uniform sampling of `s` independent pairs of stream
/// positions (the streaming form of Motwani–Xu's "sample Θ(m/ε) pairs
/// of tuples").
///
/// Each slot is an independent size-2 reservoir (Algorithm R with
/// k = 2): after `t` items, slot `i` holds a uniform 2-subset of
/// `[0, t)`. Instead of flipping a coin per slot per item (O(s·n)
/// total), each slot's next replacement time is drawn directly from its
/// closed-form distribution — the survival probability from item count
/// `t` to `c` telescopes to `t(t-1)/(c(c-1))`, so inversion sampling
/// gives the next replacement in O(1) — and slots are kept in a
/// min-heap keyed by that time. Total work is
/// `O(n + s·log s·log n)` expected.
class PairReservoir {
 public:
  PairReservoir(size_t num_slots, Rng* rng);

  /// Advances the stream by one item (position `seen()`); returns true
  /// if any slot now references this position (the caller must retain
  /// the tuple's payload).
  bool Offer();

  uint64_t seen() const { return seen_; }
  size_t num_slots() const { return slots_.size(); }

  /// The sampled pairs as stream positions; valid once `seen() >= 2`.
  const std::vector<std::pair<uint64_t, uint64_t>>& pairs() const {
    return slots_;
  }

 private:
  /// Draws the item count (1-based) of the slot's next replacement,
  /// given the current count `t >= 2`.
  uint64_t NextReplacementCount(uint64_t t);

  std::vector<std::pair<uint64_t, uint64_t>> slots_;
  Rng* rng_;
  uint64_t seen_ = 0;
  // Min-heap of (next replacement item count, slot index).
  using Entry = std::pair<uint64_t, uint32_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
};

}  // namespace qikey

#endif  // QIKEY_STREAM_PAIR_RESERVOIR_H_
