// ReservoirSampler is a header-only template (see reservoir.h). This
// translation unit exists to anchor the module in the build and to
// instantiate the common specializations once for faster client builds.

#include "stream/reservoir.h"

namespace qikey {

template class ReservoirSampler<uint32_t>;
template class ReservoirSampler<uint64_t>;
template class ReservoirSampler<std::vector<uint32_t>>;

}  // namespace qikey
