#ifndef QIKEY_STREAM_STREAM_BUILDER_H_
#define QIKEY_STREAM_STREAM_BUILDER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/mx_pair_filter.h"
#include "core/sketch.h"
#include "core/tuple_sample_filter.h"
#include "data/dataset.h"
#include "stream/pair_reservoir.h"
#include "stream/reservoir.h"
#include "util/rng.h"
#include "util/status.h"

namespace qikey {

/// \brief One-pass builder for the Theorem 2 non-separation sketch:
/// `s` independent pair reservoirs over the stream, materialized into
/// the sketch's code layout at Finish().
class StreamingSketchBuilder {
 public:
  /// `small_cutoff` follows `SketchSmallCutoff` (caller computes it
  /// from its (k, eps) targets; the builder is agnostic).
  StreamingSketchBuilder(Schema schema, std::vector<uint32_t> cardinalities,
                         uint64_t num_pairs, uint64_t small_cutoff,
                         Rng* rng);

  Status Offer(const std::vector<ValueCode>& row);

  uint64_t rows_seen() const { return reservoir_.seen(); }

  Result<NonSeparationSketch> Finish() &&;

 private:
  void CollectGarbage();

  Schema schema_;
  std::vector<uint32_t> cardinalities_;
  PairReservoir reservoir_;
  uint64_t small_cutoff_;
  std::unordered_map<uint64_t, std::vector<ValueCode>> payloads_;
  uint64_t next_gc_ = 1024;
};

/// \brief One-pass builder for this paper's filter: reservoir-samples
/// `r = Θ(m/√ε)` tuples from a stream of rows and materializes them.
///
/// Space: `O(r·m)` codes — proportional to the number of samples, as
/// Section 1 observes for the streaming implementation.
class StreamingTupleFilterBuilder {
 public:
  /// `schema` and per-attribute `cardinalities` describe the stream's
  /// rows; `sample_size` tuples are retained.
  StreamingTupleFilterBuilder(Schema schema,
                              std::vector<uint32_t> cardinalities,
                              uint64_t sample_size, Rng* rng);

  /// Feeds the next row (codes, one per attribute).
  Status Offer(const std::vector<ValueCode>& row);

  uint64_t rows_seen() const { return reservoir_.seen(); }

  /// Builds the filter from the retained sample.
  Result<TupleSampleFilter> Finish(
      DuplicateDetection detection = DuplicateDetection::kSort) &&;

 private:
  Schema schema_;
  std::vector<uint32_t> cardinalities_;
  ReservoirSampler<std::vector<ValueCode>> reservoir_;
};

/// \brief One-pass builder for the Motwani–Xu filter: `s` independent
/// size-2 reservoirs over the stream, retaining payloads for referenced
/// positions (with periodic garbage collection, so space stays
/// `O(s·m)` codes).
class StreamingPairFilterBuilder {
 public:
  StreamingPairFilterBuilder(Schema schema,
                             std::vector<uint32_t> cardinalities,
                             uint64_t num_pairs, Rng* rng);

  Status Offer(const std::vector<ValueCode>& row);

  uint64_t rows_seen() const { return reservoir_.seen(); }

  Result<MxPairFilter> Finish() &&;

 private:
  void CollectGarbage();

  Schema schema_;
  std::vector<uint32_t> cardinalities_;
  PairReservoir reservoir_;
  std::unordered_map<uint64_t, std::vector<ValueCode>> payloads_;
  uint64_t next_gc_ = 1024;
};

}  // namespace qikey

#endif  // QIKEY_STREAM_STREAM_BUILDER_H_
