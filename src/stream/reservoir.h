#ifndef QIKEY_STREAM_RESERVOIR_H_
#define QIKEY_STREAM_RESERVOIR_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace qikey {

/// \brief Uniform reservoir sampling of `k` items from a stream
/// (Vitter's Algorithm R, with the Algorithm-L skip optimization once
/// the reservoir is full).
///
/// After observing `t >= k` items, the reservoir is a uniform k-subset
/// of them — exactly the "sample tuples uniformly at random" primitive
/// of Algorithm 1, usable in one pass over the data as Section 1 notes.
template <typename T>
class ReservoirSampler {
 public:
  ReservoirSampler(size_t capacity, Rng* rng)
      : capacity_(capacity), rng_(rng) {
    QIKEY_CHECK(rng != nullptr);
    items_.reserve(capacity);
  }

  /// Offers the next stream item.
  void Offer(const T& item) {
    ++seen_;
    if (items_.size() < capacity_) {
      items_.push_back(item);
      if (items_.size() == capacity_) PlanSkip();
      return;
    }
    if (skip_ > 0) {
      --skip_;
      return;
    }
    size_t victim = static_cast<size_t>(rng_->Uniform(capacity_));
    items_[victim] = item;
    PlanSkip();
  }

  /// \brief Merges `other` into this sampler. Both must have the same
  /// capacity and have sampled DISJOINT streams; afterwards the retained
  /// items are distributed exactly as one reservoir fed the
  /// concatenation of both streams (`seen()` becomes the sum).
  ///
  /// The split is hypergeometric — k of the merged sample come from
  /// this reservoir, where k is the number of population-1 items in a
  /// uniform `capacity`-draw from `seen() + other.seen()` — and uniform
  /// subsets of the two uniform samples fill the two sides. The sampler
  /// remains usable: further `Offer`s stay exactly uniform (replacement
  /// times are then drawn from the closed-form skip distribution rather
  /// than Algorithm L's running-maximum state, which a merge
  /// invalidates).
  void Merge(ReservoirSampler&& other) {
    QIKEY_CHECK(capacity_ == other.capacity_)
        << "cannot merge reservoirs of differing capacity";
    uint64_t n1 = seen_;
    uint64_t n2 = other.seen_;
    uint64_t target = std::min<uint64_t>(capacity_, n1 + n2);
    uint64_t k = rng_->HypergeometricDraw(target, n1, n2);
    QIKEY_CHECK(k <= items_.size() && target - k <= other.items_.size())
        << "reservoir smaller than its hypergeometric share";
    std::vector<T> merged;
    merged.reserve(target);
    for (uint64_t idx : rng_->SampleWithoutReplacement(items_.size(), k)) {
      merged.push_back(std::move(items_[idx]));
    }
    for (uint64_t idx :
         rng_->SampleWithoutReplacement(other.items_.size(), target - k)) {
      merged.push_back(std::move(other.items_[idx]));
    }
    items_ = std::move(merged);
    seen_ = n1 + n2;
    other.items_.clear();
    other.seen_ = 0;
    exact_skip_ = true;
    if (items_.size() == capacity_) PlanSkipExact();
  }

  uint64_t seen() const { return seen_; }
  const std::vector<T>& items() const { return items_; }
  std::vector<T> TakeItems() && { return std::move(items_); }

 private:
  // Algorithm L: w tracks the max of k uniforms; the number of items to
  // skip before the next replacement is geometric-like.
  void PlanSkip() {
    if (exact_skip_) {
      PlanSkipExact();
      return;
    }
    double u1 = std::max(rng_->UniformDouble(), 1e-300);
    w_ *= std::exp(std::log(u1) / static_cast<double>(capacity_));
    double u2 = std::max(rng_->UniformDouble(), 1e-300);
    skip_ = static_cast<uint64_t>(
        std::floor(std::log(u2) / std::log1p(-w_)));
  }

  // Exact skip for a reservoir that merged: with k = capacity and t
  // items seen, P(skip >= j) = prod_{i=1..j} (1 - k/(t+i)). Inversion by
  // sequential product — O(skip) work, i.e. O(1) per skipped item, and
  // exactly the acceptance law of Algorithm R at any t.
  void PlanSkipExact() {
    double u = std::max(rng_->UniformDouble(), 1e-300);
    double survival = 1.0;
    uint64_t j = 0;
    double k = static_cast<double>(capacity_);
    while (true) {
      survival *= 1.0 - k / static_cast<double>(seen_ + j + 1);
      if (survival <= u) break;
      ++j;
    }
    skip_ = j;
  }

  size_t capacity_;
  Rng* rng_;
  std::vector<T> items_;
  uint64_t seen_ = 0;
  uint64_t skip_ = 0;
  double w_ = 1.0;
  bool exact_skip_ = false;
};

}  // namespace qikey

#endif  // QIKEY_STREAM_RESERVOIR_H_
