#ifndef QIKEY_STREAM_RESERVOIR_H_
#define QIKEY_STREAM_RESERVOIR_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace qikey {

/// \brief Uniform reservoir sampling of `k` items from a stream
/// (Vitter's Algorithm R, with the Algorithm-L skip optimization once
/// the reservoir is full).
///
/// After observing `t >= k` items, the reservoir is a uniform k-subset
/// of them — exactly the "sample tuples uniformly at random" primitive
/// of Algorithm 1, usable in one pass over the data as Section 1 notes.
template <typename T>
class ReservoirSampler {
 public:
  ReservoirSampler(size_t capacity, Rng* rng)
      : capacity_(capacity), rng_(rng) {
    QIKEY_CHECK(rng != nullptr);
    items_.reserve(capacity);
  }

  /// Offers the next stream item.
  void Offer(const T& item) {
    ++seen_;
    if (items_.size() < capacity_) {
      items_.push_back(item);
      if (items_.size() == capacity_) PlanSkip();
      return;
    }
    if (skip_ > 0) {
      --skip_;
      return;
    }
    size_t victim = static_cast<size_t>(rng_->Uniform(capacity_));
    items_[victim] = item;
    PlanSkip();
  }

  uint64_t seen() const { return seen_; }
  const std::vector<T>& items() const { return items_; }
  std::vector<T> TakeItems() && { return std::move(items_); }

 private:
  // Algorithm L: w tracks the max of k uniforms; the number of items to
  // skip before the next replacement is geometric-like.
  void PlanSkip() {
    double u1 = std::max(rng_->UniformDouble(), 1e-300);
    w_ *= std::exp(std::log(u1) / static_cast<double>(capacity_));
    double u2 = std::max(rng_->UniformDouble(), 1e-300);
    skip_ = static_cast<uint64_t>(
        std::floor(std::log(u2) / std::log1p(-w_)));
  }

  size_t capacity_;
  Rng* rng_;
  std::vector<T> items_;
  uint64_t seen_ = 0;
  uint64_t skip_ = 0;
  double w_ = 1.0;
};

}  // namespace qikey

#endif  // QIKEY_STREAM_RESERVOIR_H_
