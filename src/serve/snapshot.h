#ifndef QIKEY_SERVE_SNAPSHOT_H_
#define QIKEY_SERVE_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/attribute_set.h"
#include "core/filter.h"
#include "data/dataset.h"
#include "engine/pipeline.h"
#include "monitor/key_monitor.h"
#include "shard/shard_artifact.h"
#include "util/status.h"

namespace qikey {

/// \brief One immutable, epoch-numbered unit of serving state: the
/// artifact a discovery run produces once and a `QueryEngine` answers
/// from many times.
///
/// Everything inside is immutable after `SnapshotStore::Publish`, so
/// any number of request threads may read it concurrently with no
/// locking; all answers are pure functions of the snapshot.
///
/// `sample` is the retained tuple sample the snapshot evaluates
/// `separation`/`afd`/`anonymity` requests against — answers are
/// sample-level estimates, exact whenever the snapshot retains the
/// full relation (small tables, monitor windows within the sample
/// target).
struct ServeSnapshot {
  /// Assigned by `SnapshotStore::Publish`; 0 = never published. A
  /// snapshot restored from a QSNP1 file carries the epoch recorded at
  /// save time, which `Publish` treats as a floor (epoch continuity
  /// across restarts).
  uint64_t epoch = 0;
  /// The ε the snapshot was discovered with (classifies `separation`).
  double eps = 0.0;
  /// Rows of the relation the snapshot summarizes.
  uint64_t source_rows = 0;
  /// Evaluation surface for sample-based requests. Never null.
  std::shared_ptr<const Dataset> sample;
  /// The ε-separation filter answering `is-key`. Never null.
  std::shared_ptr<const SeparationFilter> filter;
  /// Canonically ordered minimal keys (may be empty). Never null.
  std::shared_ptr<const std::vector<AttributeSet>> keys;

  const Schema& schema() const { return sample->schema(); }

  /// One-line summary ("epoch 3: 150000 rows, 842-tuple sample, ...").
  std::string Describe() const;
};

/// Freezes a finished pipeline run into a snapshot: the run's verify
/// filter and greedy sample are shared (not copied), and the emitted
/// key becomes the snapshot's single tracked minimal key. `eps` is the
/// pipeline's option (the result does not carry it).
Result<ServeSnapshot> SnapshotFromPipelineResult(const PipelineResult& result,
                                                 double eps);

/// Freezes a live monitor's current state: the window is materialized
/// into an immutable exact filter (the serving filter must not share
/// mutable state with the writer) and the frontier is taken from the
/// monitor's latest published snapshot. Call from the writer thread or
/// with updates paused — the monitor's window is read directly.
Result<ServeSnapshot> SnapshotFromMonitor(const KeyMonitor& monitor);

/// Merges shard artifacts (e.g. read back via `ReadShardArtifactFile`)
/// and finishes discovery under `options`, freezing the outcome. The
/// central-merge deployment: shard builders ship artifacts, the serving
/// tier loads them.
Result<ServeSnapshot> SnapshotFromShardArtifacts(
    std::vector<ShardFilterArtifact> artifacts,
    const PipelineOptions& options, uint64_t seed);

/// \brief Declarative description of where a serving snapshot comes
/// from — the single entry point behind `qikey serve --snapshot-from`.
///
/// Three deployments, one loader:
///   kPipelineRun    — load `csv_path`, run the discovery pipeline once
///                     (`pipeline`, `seed`), freeze the result.
///   kMonitor        — replay `csv_path` through an incremental
///                     `KeyMonitor` (optionally a sliding `window`),
///                     freeze its final state.
///   kShardArtifacts — read each of `artifact_paths` (written by shard
///                     builders via `WriteShardArtifactFile`), merge,
///                     finish discovery, freeze.
struct SnapshotSource {
  enum class Kind { kPipelineRun, kMonitor, kShardArtifacts };

  Kind kind = Kind::kPipelineRun;
  /// Input CSV (kPipelineRun, kMonitor).
  std::string csv_path;
  /// Shard artifact files (kShardArtifacts).
  std::vector<std::string> artifact_paths;
  /// eps / backend / threads for discovery; also reused as the
  /// monitor's eps/backend/threads.
  PipelineOptions pipeline;
  uint64_t seed = 1;
  /// Monitor-only: key-size ceiling and sliding-window capacity
  /// (0 = unbounded window).
  uint32_t max_key_size = 4;
  uint64_t window = 0;
};

/// Builds a publishable snapshot from `source` by dispatching to the
/// matching `SnapshotFrom*` builder above. Every error (missing file,
/// bad artifact, pipeline failure) comes back as a status — callers
/// need exactly one code path regardless of deployment.
Result<ServeSnapshot> LoadSnapshot(const SnapshotSource& source);

/// \brief Thread-safe holder of the current serving snapshot.
///
/// One writer (or several, externally ordered) publishes; any number of
/// readers get the latest snapshot wait-free through an atomic
/// `shared_ptr` — the `MonitorSnapshot` pattern promoted to a
/// standalone component. Readers pin a snapshot for the duration of a
/// request (or batch), so a concurrent publish never changes answers
/// mid-request; the old snapshot is freed when its last reader drops
/// it.
class SnapshotStore {
 public:
  SnapshotStore() = default;

  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  /// Stamps the next epoch onto `snapshot` and makes it current.
  /// Returns the assigned epoch (starting at 1). InvalidArgument if the
  /// snapshot is missing its sample/filter/keys.
  ///
  /// A snapshot arriving with a nonzero epoch (restored from a QSNP1
  /// file that recorded it) re-enters the sequence at
  /// `max(store epoch + 1, its recorded epoch)` — epochs stay
  /// monotonic across restarts, and clients comparing epochs across a
  /// restart never see time move backwards.
  Result<uint64_t> Publish(ServeSnapshot snapshot);

  /// The latest published snapshot; null before the first `Publish`.
  /// Safe from any thread.
  std::shared_ptr<const ServeSnapshot> Current() const;

  /// Epoch of the latest publish; 0 before the first. NOT a publish
  /// count: a snapshot restored with a recorded epoch fast-forwards
  /// this (see `Publish`).
  uint64_t epoch() const {
    return next_epoch_.load(std::memory_order_acquire);
  }

  /// Publishes THIS store performed (1 per successful `Publish`),
  /// regardless of where the epoch sequence started.
  uint64_t publishes() const {
    return publishes_.load(std::memory_order_relaxed);
  }

  /// Steady-clock timestamp (ns) of the latest publish; 0 before the
  /// first. Observability reads this to report current-snapshot age.
  int64_t last_publish_steady_ns() const {
    return last_publish_ns_.load(std::memory_order_relaxed);
  }

 private:
  // Lock-free publication seam — deliberately no mutex capability
  // here. `current_` is the atomically published pointer readers pin;
  // `next_epoch_` advances by CAS (max-then-advance is not a single
  // fetch_add); the two stat cells are relaxed. The thread-safety
  // contract is "writers externally ordered, readers wait-free", which
  // the annotations cannot express — the concurrency-* clang-tidy
  // checks and the TSan job cover this file instead.
  std::atomic<std::shared_ptr<const ServeSnapshot>> current_;
  std::atomic<uint64_t> next_epoch_{0};
  std::atomic<uint64_t> publishes_{0};
  std::atomic<int64_t> last_publish_ns_{0};
};

}  // namespace qikey

#endif  // QIKEY_SERVE_SNAPSHOT_H_
