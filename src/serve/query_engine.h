#ifndef QIKEY_SERVE_QUERY_ENGINE_H_
#define QIKEY_SERVE_QUERY_ENGINE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "obs/metrics.h"
#include "serve/request.h"
#include "serve/snapshot.h"
#include "serve/verdict_cache.h"
#include "util/thread_pool.h"

namespace qikey {

/// Options for `QueryEngine`.
struct QueryEngineOptions {
  /// Worker threads for request batches; 1 = serial, 0 = one per
  /// hardware thread. Responses are identical at any thread count.
  size_t num_threads = 1;
  /// Verdict-cache capacity; 0 disables caching. The cache is
  /// answer-transparent: it can only change latency.
  size_t cache_capacity = 4096;
  size_t cache_shards = 16;
  /// Smallest number of requests worth handing to another thread in
  /// the validate/cache sweep. Below this, fan-out overhead (chunk
  /// claims, cold request cache lines on another core) outweighs the
  /// work; batches of at most this size run inline on the caller.
  size_t min_batch_grain = 64;
};

/// \brief Concurrent request executor over a `SnapshotStore`.
///
/// Each request (or batch) pins the store's current snapshot, answers
/// purely from it, and stamps the snapshot's epoch on the response —
/// so a publish racing a batch never mixes epochs within it, and two
/// responses with equal epochs are mutually consistent.
///
/// Batches are executed the way the discovery pipeline queries its own
/// filter: all uncached `is-key` requests of the batch go through one
/// `SeparationFilter::QueryBatch` (fanning out over the engine's
/// `ThreadPool`, hitting the bitset block kernel on that backend), and
/// the sample-evaluated kinds are split over the same pool. Responses
/// are positionally aligned with requests and bit-identical across
/// thread counts and cache configurations.
///
/// Thread safety: `Execute`/`ExecuteBatch` are safe to call
/// concurrently from many threads, concurrently with `Publish` on the
/// store. (A batch already parallelizes internally; concurrent callers
/// additionally share the verdict cache.)
class QueryEngine {
 public:
  QueryEngine(const SnapshotStore* store, const QueryEngineOptions& options);

  /// Answers one request against the current snapshot. A response with
  /// a non-OK status (no snapshot published yet, arity mismatch, ...)
  /// carries no payload.
  QueryResponse Execute(const QueryRequest& request) const;

  /// Answers `requests[i]` into the `i`-th response, all against one
  /// pinned snapshot.
  std::vector<QueryResponse> ExecuteBatch(
      std::span<const QueryRequest> requests) const;

  uint64_t cache_hits() const { return cache_.hits(); }
  uint64_t cache_misses() const { return cache_.misses(); }

  size_t num_threads() const {
    return pool_ != nullptr ? pool_->num_threads() : 1;
  }

  /// Registers the engine's metric families with `registry`:
  /// `engine.*` (request/batch counters, batch-size histogram,
  /// per-pass validate/dedupe/execute timings), `cache.*`
  /// (hit/miss/evict/size), `snapshot.*` (epoch, publish count, age),
  /// and — when the engine owns a pool — `pool.*` (queue depth, task
  /// latency). The registry must not outlive the engine or its store.
  /// Recording is always on; registration only exposes the instruments.
  void RegisterMetrics(MetricsRegistry* registry) const;

 private:
  /// Validates `request` against `snapshot`; OK means the payload can
  /// be computed.
  static Status ValidateRequest(const ServeSnapshot& snapshot,
                                const QueryRequest& request);
  /// Computes the payload for one valid non-`is-key` request.
  static void AnswerOnSample(const ServeSnapshot& snapshot,
                             const QueryRequest& request,
                             QueryResponse* response);

  const SnapshotStore* store_;
  QueryEngineOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  mutable VerdictCache cache_;

  // Observability (recorded by const ExecuteBatch, hence mutable; all
  // instruments are internally thread-safe).
  mutable Counter requests_;
  mutable Counter batches_;
  mutable LatencyHistogram batch_size_;
  mutable LatencyHistogram validate_ns_;
  mutable LatencyHistogram dedupe_ns_;
  mutable LatencyHistogram execute_ns_;
  mutable Gauge pool_queue_depth_;
  mutable LatencyHistogram pool_task_ns_;
};

}  // namespace qikey

#endif  // QIKEY_SERVE_QUERY_ENGINE_H_
