#include "serve/verdict_cache.h"

#include <algorithm>

namespace qikey {

VerdictCache::VerdictCache(const VerdictCacheOptions& options) {
  if (options.capacity == 0) return;
  size_t shards = std::clamp<size_t>(options.shards, 1, options.capacity);
  per_shard_capacity_ = (options.capacity + shards - 1) / shards;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

VerdictCache::Shard& VerdictCache::ShardFor(uint64_t epoch,
                                            const AttributeSet& attrs) {
  return *shards_[KeyHash()(Key{epoch, attrs}) % shards_.size()];
}

bool VerdictCache::Lookup(uint64_t epoch, const AttributeSet& attrs,
                          FilterVerdict* verdict) {
  if (!enabled()) {
    disabled_misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Shard& shard = ShardFor(epoch, attrs);
  MutexLock lock(shard.mu);
  auto it = shard.index.find(Key{epoch, attrs});
  if (it == shard.index.end()) {
    ++shard.misses;
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  *verdict = it->second->second;
  ++shard.hits;
  return true;
}

void VerdictCache::Insert(uint64_t epoch, const AttributeSet& attrs,
                          FilterVerdict verdict) {
  if (!enabled()) return;
  Shard& shard = ShardFor(epoch, attrs);
  MutexLock lock(shard.mu);
  Key key{epoch, attrs};
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = verdict;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  EvictIfFullLocked(shard);
  shard.lru.emplace_front(std::move(key), verdict);
  shard.index.emplace(shard.lru.front().first, shard.lru.begin());
}

void VerdictCache::EvictIfFullLocked(Shard& shard) {
  if (shard.lru.size() >= per_shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

uint64_t VerdictCache::hits() const {
  uint64_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    MutexLock lock(shard->mu);
    total += shard->hits;
  }
  return total;
}

uint64_t VerdictCache::misses() const {
  uint64_t total = disabled_misses_.load(std::memory_order_relaxed);
  for (const std::unique_ptr<Shard>& shard : shards_) {
    MutexLock lock(shard->mu);
    total += shard->misses;
  }
  return total;
}

uint64_t VerdictCache::evictions() const {
  uint64_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    MutexLock lock(shard->mu);
    total += shard->evictions;
  }
  return total;
}

size_t VerdictCache::size() const {
  size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    MutexLock lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

}  // namespace qikey
