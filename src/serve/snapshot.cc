#include "serve/snapshot.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <utility>

#include "core/sample_bounds.h"
#include "core/tuple_sample_filter.h"
#include "data/csv_loader.h"
#include "util/rng.h"

namespace qikey {

std::string ServeSnapshot::Describe() const {
  char line[160];
  std::snprintf(line, sizeof(line),
                "epoch %llu: %llu source rows, %zu-tuple sample, %llu "
                "filter samples, %zu minimal key(s), eps %g",
                static_cast<unsigned long long>(epoch),
                static_cast<unsigned long long>(source_rows),
                sample->num_rows(),
                static_cast<unsigned long long>(filter->sample_size()),
                keys->size(), eps);
  return line;
}

Result<ServeSnapshot> SnapshotFromPipelineResult(const PipelineResult& result,
                                                 double eps) {
  QIKEY_RETURN_NOT_OK(ValidateEps(eps));
  if (result.filter == nullptr || result.sample == nullptr) {
    return Status::InvalidArgument(
        "pipeline result carries no filter/sample (errored or moved-from "
        "run?)");
  }
  ServeSnapshot snapshot;
  snapshot.eps = eps;
  snapshot.source_rows = result.rows;
  snapshot.sample = result.sample;
  snapshot.filter = result.filter;
  snapshot.keys = std::make_shared<const std::vector<AttributeSet>>(
      std::vector<AttributeSet>{result.key});
  return snapshot;
}

Result<ServeSnapshot> SnapshotFromMonitor(const KeyMonitor& monitor) {
  std::shared_ptr<const MonitorSnapshot> latest = monitor.Snapshot();
  if (latest == nullptr) {
    return Status::InvalidArgument("monitor has no published snapshot");
  }
  ServeSnapshot snapshot;
  snapshot.eps = monitor.options().eps;
  snapshot.source_rows = monitor.filter().window_size();
  // Freeze the live window into an immutable exact filter: the serving
  // side must not share the writer's mutable sample. Row indices in
  // witnesses are window positions at freeze time.
  auto window =
      std::make_shared<Dataset>(monitor.filter().WindowDataset());
  snapshot.filter = std::make_shared<const TupleSampleFilter>(
      TupleSampleFilter::FromSample(window, /*original_rows=*/{},
                                    DuplicateDetection::kSort));
  snapshot.sample = std::move(window);
  snapshot.keys = latest->keys;
  return snapshot;
}

Result<ServeSnapshot> SnapshotFromShardArtifacts(
    std::vector<ShardFilterArtifact> artifacts,
    const PipelineOptions& options, uint64_t seed) {
  DiscoveryPipeline pipeline(options);
  Result<PipelineResult> result =
      pipeline.RunOnShardArtifacts(std::move(artifacts), seed);
  if (!result.ok()) return result.status();
  return SnapshotFromPipelineResult(*result, options.eps);
}

Result<ServeSnapshot> LoadSnapshot(const SnapshotSource& source) {
  switch (source.kind) {
    case SnapshotSource::Kind::kPipelineRun: {
      Result<Dataset> data = LoadCsvDataset(source.csv_path);
      if (!data.ok()) return data.status();
      auto full = std::make_shared<Dataset>(std::move(*data));
      DiscoveryPipeline pipeline(source.pipeline);
      Rng rng(source.seed);
      Result<PipelineResult> result = pipeline.Run(*full, &rng);
      if (!result.ok()) return result.status();
      Result<ServeSnapshot> snapshot =
          SnapshotFromPipelineResult(*result, source.pipeline.eps);
      if (!snapshot.ok()) return snapshot;
      // A non-materialized pair filter reads through to the relation it
      // was built over; tie the loaded relation's lifetime to the
      // filter's so the snapshot never outlives its backing rows.
      std::shared_ptr<const SeparationFilter> filter = snapshot->filter;
      snapshot->filter = std::shared_ptr<const SeparationFilter>(
          filter.get(), [filter, full](const SeparationFilter*) {});
      return snapshot;
    }
    case SnapshotSource::Kind::kMonitor: {
      Result<Dataset> data = LoadCsvDataset(source.csv_path);
      if (!data.ok()) return data.status();
      MonitorOptions opts;
      opts.eps = source.pipeline.eps;
      opts.backend = source.pipeline.backend;
      opts.num_threads = source.pipeline.num_threads;
      opts.max_key_size = source.max_key_size;
      opts.window_capacity = source.window;
      Result<std::unique_ptr<KeyMonitor>> monitor =
          KeyMonitor::Make(data->schema(), opts, source.seed);
      if (!monitor.ok()) return monitor.status();
      QIKEY_RETURN_NOT_OK((*monitor)->InsertDataset(*data));
      return SnapshotFromMonitor(**monitor);
    }
    case SnapshotSource::Kind::kShardArtifacts: {
      if (source.artifact_paths.empty()) {
        return Status::InvalidArgument(
            "snapshot source lists no shard artifact files");
      }
      std::vector<ShardFilterArtifact> artifacts;
      artifacts.reserve(source.artifact_paths.size());
      for (const std::string& path : source.artifact_paths) {
        Result<ShardFilterArtifact> artifact = ReadShardArtifactFile(path);
        if (!artifact.ok()) return artifact.status();
        artifacts.push_back(std::move(*artifact));
      }
      return SnapshotFromShardArtifacts(std::move(artifacts),
                                        source.pipeline, source.seed);
    }
  }
  return Status::InvalidArgument("unknown snapshot source kind");
}

Result<uint64_t> SnapshotStore::Publish(ServeSnapshot snapshot) {
  if (snapshot.sample == nullptr || snapshot.filter == nullptr ||
      snapshot.keys == nullptr) {
    return Status::InvalidArgument(
        "snapshot must carry a sample, a filter, and keys");
  }
  // A restored snapshot re-enters the epoch sequence where its file
  // left off; a fresh one just takes the next number. CAS loop because
  // max-then-advance is not a single fetch_add.
  uint64_t prev = next_epoch_.load(std::memory_order_acquire);
  uint64_t epoch;
  do {
    epoch = std::max(prev + 1, snapshot.epoch);
  } while (!next_epoch_.compare_exchange_weak(prev, epoch,
                                              std::memory_order_acq_rel));
  snapshot.epoch = epoch;
  publishes_.fetch_add(1, std::memory_order_relaxed);
  current_.store(std::make_shared<const ServeSnapshot>(std::move(snapshot)),
                 std::memory_order_release);
  last_publish_ns_.store(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count(),
      std::memory_order_relaxed);
  return epoch;
}

std::shared_ptr<const ServeSnapshot> SnapshotStore::Current() const {
  return current_.load(std::memory_order_acquire);
}

}  // namespace qikey
