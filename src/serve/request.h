#ifndef QIKEY_SERVE_REQUEST_H_
#define QIKEY_SERVE_REQUEST_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/afd.h"
#include "core/attribute_set.h"
#include "core/filter.h"
#include "core/separation.h"
#include "data/schema.h"
#include "util/status.h"

namespace qikey {

/// What a serve-layer request asks of a discovery snapshot.
enum class QueryKind {
  kIsKey,       ///< filter verdict: is `attrs` an ε-separation key?
  kSeparation,  ///< exact separation ratio of `attrs` on the snapshot
  kMinKey,      ///< the snapshot's discovered minimal key(s)
  kAfd,         ///< error of the approximate FD `attrs -> rhs`
  kAnonymity,   ///< k-anonymity level of `attrs`
};

/// One request against a `ServeSnapshot`. Parsed from the text format
/// below or constructed directly.
struct QueryRequest {
  QueryKind kind = QueryKind::kIsKey;
  /// The queried attribute set (`is-key`/`separation`/`anonymity`), or
  /// the FD's left-hand side (`afd`). Unused by `min-key`.
  AttributeSet attrs;
  /// `afd` only: the right-hand-side attribute.
  AttributeIndex rhs = 0;
  /// `anonymity` only: the k threshold for the below-k fraction.
  uint64_t k = 2;
};

/// Answer to one request. `status` is non-OK when the request does not
/// fit the answering snapshot (arity mismatch, rhs inside the lhs, ...);
/// the payload fields are then meaningless. Which payload field is
/// live depends on the request's kind.
struct QueryResponse {
  Status status;
  /// Epoch of the snapshot that answered (all responses of one
  /// `ExecuteBatch` share it).
  uint64_t epoch = 0;
  bool cache_hit = false;

  FilterVerdict verdict = FilterVerdict::kAccept;        // is-key
  double separation_ratio = 0.0;                         // separation
  SeparationClass separation_class = SeparationClass::kBad;  // separation
  bool has_key = false;                                  // min-key
  AttributeSet key;                                      // min-key
  size_t num_minimal_keys = 0;                           // min-key
  AfdError afd;                                          // afd
  uint64_t anonymity_level = 0;                          // anonymity
  double below_k_fraction = 0.0;                         // anonymity
};

/// \brief Parses one request line. Strict: unknown verbs, unknown or
/// empty attribute names, malformed integers, and trailing junk are
/// InvalidArgument — nothing is silently coerced.
///
/// Grammar (tokens separated by spaces/tabs):
///   is-key     <attr>[,<attr>...]
///   separation <attr>[,<attr>...]
///   min-key
///   afd        <attr>[,<attr>...] -> <attr>
///   anonymity  <attr>[,<attr>...] [k]
Result<QueryRequest> ParseQueryRequest(std::string_view line,
                                       const Schema& schema);

/// Parses a whole request file body: one request per line, blank lines
/// and `#` comments skipped. Errors name the offending 1-based line.
Result<std::vector<QueryRequest>> ParseQueryRequests(std::string_view text,
                                                     const Schema& schema);

/// Reads `path` and parses it with `ParseQueryRequests`.
Result<std::vector<QueryRequest>> LoadQueryRequestFile(
    const std::string& path, const Schema& schema);

/// One-line human-readable rendering of a request's answer, e.g.
/// `is-key {zip, dob}: ACCEPT (cached)`.
std::string FormatQueryResponse(const QueryRequest& request,
                                const QueryResponse& response,
                                const Schema* schema = nullptr);

}  // namespace qikey

#endif  // QIKEY_SERVE_REQUEST_H_
