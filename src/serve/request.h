#ifndef QIKEY_SERVE_REQUEST_H_
#define QIKEY_SERVE_REQUEST_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/afd.h"
#include "core/attribute_set.h"
#include "core/filter.h"
#include "core/separation.h"
#include "data/schema.h"
#include "util/status.h"

namespace qikey {

/// What a serve-layer request asks of a discovery snapshot.
enum class QueryKind {
  kIsKey,       ///< filter verdict: is `attrs` an ε-separation key?
  kSeparation,  ///< exact separation ratio of `attrs` on the snapshot
  kMinKey,      ///< the snapshot's discovered minimal key(s)
  kAfd,         ///< error of the approximate FD `attrs -> rhs`
  kAnonymity,   ///< k-anonymity level of `attrs`
};

/// \brief Stable serve-boundary error taxonomy.
///
/// Every error a client can observe at the serve layer — on the wire
/// (`err <code> <message>` lines) and in `QueryResponse::error_code` —
/// is one of these. The set is deliberately small and append-only: wire
/// names (`ServeErrorCodeName`) are part of the versioned protocol, so
/// codes are never renamed or reused. `Status` messages stay the
/// human-readable detail; the code is what scripts and clients branch
/// on.
enum class ServeErrorCode {
  kNone = 0,            ///< no error (response line is `ok ...`)
  kParse,               ///< request line did not parse (bad verb, junk)
  kValidation,          ///< parsed but does not fit the snapshot/schema
  kOverload,            ///< admission control shed the request
  kSnapshotUnavailable, ///< no snapshot published (or gone) to answer from
  kInternal,            ///< anything else; nothing the client did wrong
};

/// One request against a `ServeSnapshot`. Parsed from the text format
/// below or constructed directly.
struct QueryRequest {
  QueryKind kind = QueryKind::kIsKey;
  /// The queried attribute set (`is-key`/`separation`/`anonymity`), or
  /// the FD's left-hand side (`afd`). Unused by `min-key`.
  AttributeSet attrs;
  /// `afd` only: the right-hand-side attribute.
  AttributeIndex rhs = 0;
  /// `anonymity` only: the k threshold for the below-k fraction.
  uint64_t k = 2;
};

/// Answer to one request. `status` is non-OK when the request does not
/// fit the answering snapshot (arity mismatch, rhs inside the lhs, ...);
/// the payload fields are then meaningless. Which payload field is
/// live depends on the request's kind.
struct QueryResponse {
  Status status;
  /// Taxonomy bucket for `status`; `kNone` iff `status.ok()`. Set by
  /// whichever layer produced the error (parser, engine validation,
  /// server admission control), so the wire line and the in-process
  /// response always agree on the code.
  ServeErrorCode error_code = ServeErrorCode::kNone;
  /// Epoch of the snapshot that answered (all responses of one
  /// `ExecuteBatch` share it).
  uint64_t epoch = 0;
  bool cache_hit = false;

  FilterVerdict verdict = FilterVerdict::kAccept;        // is-key
  double separation_ratio = 0.0;                         // separation
  SeparationClass separation_class = SeparationClass::kBad;  // separation
  bool has_key = false;                                  // min-key
  AttributeSet key;                                      // min-key
  size_t num_minimal_keys = 0;                           // min-key
  AfdError afd;                                          // afd
  uint64_t anonymity_level = 0;                          // anonymity
  double below_k_fraction = 0.0;                         // anonymity
};

// Parsing (request lines / request files) and wire encoding live in
// `serve/protocol.h` — the single definition of the versioned wire API
// shared by the batch executor, the network server, and the tests.

/// One-line human-readable rendering of a request's answer, e.g.
/// `is-key {zip, dob}: ACCEPT (cached)`. For the machine-readable wire
/// form see `EncodeResponseLine` in `serve/protocol.h`.
std::string FormatQueryResponse(const QueryRequest& request,
                                const QueryResponse& response,
                                const Schema* schema = nullptr);

}  // namespace qikey

#endif  // QIKEY_SERVE_REQUEST_H_
