#include "serve/protocol.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace qikey {

namespace {

/// Splits on runs of spaces/tabs (the request grammar's separator).
std::vector<std::string_view> SplitTokens(std::string_view line) {
  std::vector<std::string_view> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    size_t begin = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > begin) tokens.push_back(line.substr(begin, i - begin));
  }
  return tokens;
}

/// Resolves "a,b,c" strictly: every name must be non-empty and in the
/// schema (so `a,,b` and typos fail instead of shrinking the set).
Result<AttributeSet> ResolveAttrList(std::string_view spec,
                                     const Schema& schema) {
  AttributeSet out(schema.num_attributes());
  size_t pos = 0;
  while (true) {
    size_t comma = spec.find(',', pos);
    std::string_view name = spec.substr(
        pos, comma == std::string_view::npos ? std::string_view::npos
                                             : comma - pos);
    if (name.empty()) {
      return Status::InvalidArgument("empty attribute name in '" +
                                     std::string(spec) + "'");
    }
    int idx = schema.Find(std::string(name));
    if (idx < 0) {
      return Status::InvalidArgument("unknown attribute: " +
                                     std::string(name));
    }
    out.Add(static_cast<AttributeIndex>(idx));
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  return out;
}

/// Strict non-negative integer: the whole token must be digits.
bool ParseStrictUint(std::string_view token, uint64_t* out) {
  if (token.empty()) return false;
  std::string buf(token);
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size() || errno == ERANGE ||
      buf[0] == '-' || buf[0] == '+') {
    return false;
  }
  *out = static_cast<uint64_t>(v);
  return true;
}

/// Comma-joined attribute names ("zip,dob"), the wire form of a set
/// (no braces or spaces — one token on the response line).
std::string WireAttrList(const AttributeSet& attrs, const Schema& schema) {
  std::string out;
  for (AttributeIndex i : attrs.ToIndices()) {
    if (!out.empty()) out += ',';
    out += schema.name(i);
  }
  return out;
}

/// Shortest round-trippable float rendering used by every v1 payload.
std::string WireDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

bool IsHelloLine(std::string_view line) {
  constexpr std::string_view kPrefix = "QIKEY/";
  if (line.substr(0, kPrefix.size()) != kPrefix) return false;
  std::string_view digits = line.substr(kPrefix.size());
  if (digits.empty()) return false;
  for (char c : digits) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

Result<ProtocolVersion> ParseHelloLine(std::string_view line) {
  if (!IsHelloLine(line)) {
    return Status::InvalidArgument("malformed protocol hello '" +
                                   std::string(line) +
                                   "' (want QIKEY/<version>)");
  }
  uint64_t version = 0;
  if (!ParseStrictUint(line.substr(6), &version) ||
      version != static_cast<uint64_t>(ProtocolVersion::kV1)) {
    return Status::InvalidArgument(
        "unsupported protocol version '" + std::string(line) +
        "' (this build speaks QIKEY/1)");
  }
  return ProtocolVersion::kV1;
}

std::string FormatHelloLine(ProtocolVersion version) {
  return "QIKEY/" + std::to_string(static_cast<uint32_t>(version)) +
         " ready";
}

const char* ServeErrorCodeName(ServeErrorCode code) {
  switch (code) {
    case ServeErrorCode::kNone:
      return "none";
    case ServeErrorCode::kParse:
      return "parse";
    case ServeErrorCode::kValidation:
      return "validation";
    case ServeErrorCode::kOverload:
      return "overload";
    case ServeErrorCode::kSnapshotUnavailable:
      return "unavailable";
    case ServeErrorCode::kInternal:
      return "internal";
  }
  return "internal";
}

ServeErrorCode ServeErrorCodeFromStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return ServeErrorCode::kNone;
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
      return ServeErrorCode::kValidation;
    case StatusCode::kNotFound:
      return ServeErrorCode::kSnapshotUnavailable;
    default:
      return ServeErrorCode::kInternal;
  }
}

Result<QueryRequest> ParseQueryRequest(std::string_view line,
                                       const Schema& schema) {
  std::vector<std::string_view> tokens = SplitTokens(line);
  if (tokens.empty()) {
    return Status::InvalidArgument("empty request");
  }
  std::string_view verb = tokens[0];
  QueryRequest request;
  if (verb == "min-key") {
    if (tokens.size() != 1) {
      return Status::InvalidArgument("min-key takes no arguments");
    }
    request.kind = QueryKind::kMinKey;
    request.attrs = AttributeSet(schema.num_attributes());
    return request;
  }
  if (verb == "is-key" || verb == "separation") {
    if (tokens.size() != 2) {
      return Status::InvalidArgument(std::string(verb) +
                                     " wants exactly one attribute list");
    }
    Result<AttributeSet> attrs = ResolveAttrList(tokens[1], schema);
    if (!attrs.ok()) return attrs.status();
    request.kind =
        verb == "is-key" ? QueryKind::kIsKey : QueryKind::kSeparation;
    request.attrs = std::move(*attrs);
    return request;
  }
  if (verb == "afd") {
    if (tokens.size() != 4 || tokens[2] != "->") {
      return Status::InvalidArgument("afd wants: afd <lhs,...> -> <rhs>");
    }
    Result<AttributeSet> lhs = ResolveAttrList(tokens[1], schema);
    if (!lhs.ok()) return lhs.status();
    int rhs = schema.Find(std::string(tokens[3]));
    if (rhs < 0) {
      return Status::InvalidArgument("unknown attribute: " +
                                     std::string(tokens[3]));
    }
    request.kind = QueryKind::kAfd;
    request.attrs = std::move(*lhs);
    request.rhs = static_cast<AttributeIndex>(rhs);
    return request;
  }
  if (verb == "anonymity") {
    if (tokens.size() != 2 && tokens.size() != 3) {
      return Status::InvalidArgument(
          "anonymity wants: anonymity <attrs,...> [k]");
    }
    Result<AttributeSet> attrs = ResolveAttrList(tokens[1], schema);
    if (!attrs.ok()) return attrs.status();
    request.kind = QueryKind::kAnonymity;
    request.attrs = std::move(*attrs);
    if (tokens.size() == 3) {
      uint64_t k = 0;
      if (!ParseStrictUint(tokens[2], &k) || k == 0) {
        return Status::InvalidArgument("anonymity k must be a positive "
                                       "integer, got '" +
                                       std::string(tokens[2]) + "'");
      }
      request.k = k;
    }
    return request;
  }
  return Status::InvalidArgument(
      "unknown request verb '" + std::string(verb) +
      "' (want is-key|separation|min-key|afd|anonymity)");
}

Result<std::vector<QueryRequest>> ParseQueryRequests(std::string_view text,
                                                     const Schema& schema) {
  std::vector<QueryRequest> requests;
  bool saw_request_or_hello = false;
  size_t line_number = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    // Skip blanks and comments; everything else must parse.
    size_t first = line.find_first_not_of(" \t");
    if (first != std::string_view::npos && line[first] != '#') {
      size_t last = line.find_last_not_of(" \t");
      std::string_view body = line.substr(first, last - first + 1);
      // A leading QIKEY/<n> line is the file's version header, not a
      // request. Files without one are the pre-versioning format and
      // parse as v1 unchanged; v1 is also the only wire format, so the
      // header changes nothing but gets validated.
      if (!saw_request_or_hello && IsHelloLine(body)) {
        Result<ProtocolVersion> version = ParseHelloLine(body);
        if (!version.ok()) {
          return Status::InvalidArgument(
              "line " + std::to_string(line_number) + ": " +
              version.status().message());
        }
        saw_request_or_hello = true;
      } else {
        saw_request_or_hello = true;
        Result<QueryRequest> request = ParseQueryRequest(line, schema);
        if (!request.ok()) {
          return Status::InvalidArgument(
              "line " + std::to_string(line_number) + ": " +
              request.status().message());
        }
        requests.push_back(std::move(*request));
      }
    }
    if (eol == std::string_view::npos) break;
    pos = eol + 1;
  }
  return requests;
}

Result<std::vector<QueryRequest>> LoadQueryRequestFile(
    const std::string& path, const Schema& schema) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path);
  }
  std::string text;
  char buf[1 << 16];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, got);
  }
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Status::IOError("cannot read " + path);
  return ParseQueryRequests(text, schema);
}

std::string EncodeResponseLine(const QueryRequest& request,
                               const QueryResponse& response,
                               const Schema& schema) {
  if (!response.status.ok()) {
    ServeErrorCode code = response.error_code != ServeErrorCode::kNone
                              ? response.error_code
                              : ServeErrorCodeFromStatus(response.status);
    return EncodeErrorLine(code, response.status.message());
  }
  std::string out = "ok ";
  switch (request.kind) {
    case QueryKind::kIsKey:
      out += response.verdict == FilterVerdict::kAccept ? "accept" : "reject";
      break;
    case QueryKind::kSeparation: {
      const char* cls =
          response.separation_class == SeparationClass::kKey ? "key"
          : response.separation_class == SeparationClass::kBad ? "bad"
                                                               : "gray";
      out += WireDouble(response.separation_ratio);
      out += ' ';
      out += cls;
      break;
    }
    case QueryKind::kMinKey:
      if (response.has_key) {
        out += WireAttrList(response.key, schema);
      } else {
        out += "none";
      }
      out += ' ';
      out += std::to_string(response.num_minimal_keys);
      break;
    case QueryKind::kAfd:
      out += WireDouble(response.afd.g2);
      out += ' ';
      out += WireDouble(response.afd.conditional);
      out += ' ';
      out += std::to_string(response.afd.violating);
      break;
    case QueryKind::kAnonymity:
      out += std::to_string(response.anonymity_level);
      out += ' ';
      out += WireDouble(response.below_k_fraction);
      break;
  }
  return out;
}

std::string EncodeErrorLine(ServeErrorCode code, std::string_view message) {
  std::string out = "err ";
  out += ServeErrorCodeName(code == ServeErrorCode::kNone
                                ? ServeErrorCode::kInternal
                                : code);
  if (!message.empty()) {
    out += ' ';
    for (char c : message) {
      out += (c == '\n' || c == '\r') ? ' ' : c;
    }
  }
  return out;
}

}  // namespace qikey
