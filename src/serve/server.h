#ifndef QIKEY_SERVE_SERVER_H_
#define QIKEY_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "data/schema.h"
#include "obs/metrics.h"
#include "serve/conn.h"
#include "serve/protocol.h"
#include "serve/query_engine.h"
#include "util/mutex.h"
#include "util/net.h"
#include "util/status.h"

namespace qikey {

/// Tuning knobs for `ServeServer`. The defaults keep every buffer and
/// queue bounded; a flooded or stalled client costs O(caps) memory,
/// never O(traffic).
struct ServerOptions {
  /// Listen address; port 0 binds an ephemeral port (see `port()`).
  HostPort listen{"127.0.0.1", 0};

  /// Accepted connections beyond this are greeted with
  /// `err overload ...` and closed immediately.
  size_t max_connections = 1024;
  /// Longest request line (bytes, excluding the newline). A longer
  /// line gets `err parse ...` and the connection is closed (framing
  /// is lost past this point).
  size_t max_line_bytes = 4096;

  /// Admission control: request lines queued or executing per
  /// connection, and across all connections. A line arriving past
  /// either cap is answered `err overload ...` instead of queued —
  /// bounded memory, never unbounded buffering.
  size_t max_pending_per_conn = 256;
  size_t max_pending_global = 8192;
  /// When true, a connection that trips the per-connection cap is also
  /// closed after the overload response flushes (flood containment);
  /// default keeps it open so well-behaved bursts just shed load.
  bool close_on_overload = false;

  /// Unsent response bytes a stalled client may accumulate before the
  /// connection is closed (the reactor never buffers beyond this).
  size_t max_write_buffer_bytes = 1 << 20;

  /// A connection with no inbound bytes and no queued work for this
  /// long is closed — this is also what defeats slow-loris partial
  /// lines. <= 0 disables reaping.
  int idle_timeout_ms = 60 * 1000;
  /// On drain: how long to wait for in-flight batches to finish and
  /// write buffers to flush before force-closing.
  int drain_timeout_ms = 5000;

  /// Executor threads pulling request batches off the admission queue
  /// and calling `QueryEngine::ExecuteBatch`. Distinct from (and
  /// layered on top of) the engine's own ThreadPool: these threads
  /// decouple connection handling from query execution, the engine's
  /// pool parallelizes within one batch.
  size_t worker_threads = 1;
  /// Most lines handed to one `ExecuteBatch` call.
  size_t max_batch = 512;

  /// Registry the server (and its engine) register their metrics with
  /// at `Start()` — this is what the `stats` wire verb renders. Null
  /// means the server creates and owns a private registry, so `stats`
  /// works with zero wiring; pass one to share it with other exposure
  /// paths (periodic dumps, SIGUSR1). Must outlive the server.
  MetricsRegistry* metrics = nullptr;

  /// Trace every Nth admitted request line with per-stage timings
  /// (parse / queue-wait / execute / flush); 0 disables tracing. Each
  /// sampled request produces one JSON line through `trace_sink`.
  uint64_t trace_sample = 0;
  /// Destination for trace lines (called on the reactor thread, line
  /// has no trailing newline). Null means stderr via `WriteRawLine`.
  std::function<void(const std::string&)> trace_sink;
};

/// Monotonic counters, readable while serving (`ServeServer::stats`).
/// A point-in-time copy assembled from the server's registry-backed
/// `Counter`s — kept as a plain struct so existing callers and tests
/// read the same shape they always did.
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t lines_received = 0;
  uint64_t responses_sent = 0;     ///< response lines queued to clients
  uint64_t overload_responses = 0; ///< `err overload` lines (admission)
  uint64_t parse_errors = 0;       ///< `err parse` lines
  uint64_t idle_reaped = 0;        ///< connections closed by the reaper
  uint64_t batches_executed = 0;
};

/// \brief The `qikey serve` front end: a non-blocking epoll
/// acceptor/reactor speaking the newline-delimited `QIKEY/1` protocol
/// (see `serve/protocol.h`) on one thread, with request execution
/// decoupled onto worker threads driving a shared `QueryEngine`.
///
/// ## Threading model
///
///   reactor thread:  accept / read / frame lines / admission control /
///                    write buffered responses / timeouts / drain
///   worker threads:  parse + `QueryEngine::ExecuteBatch` + encode
///   engine pool:     intra-batch parallelism (inside the engine)
///
/// Connections are owned exclusively by the reactor; workers receive
/// only copies of request lines tagged with the connection's id, and
/// completions for connections that died in the meantime are dropped
/// by id lookup (ids are never reused). At most one batch per
/// connection is in flight, which keeps responses in request order
/// with no sequencing metadata.
///
/// ## Backpressure
///
/// Every queue is bounded (`ServerOptions`): lines past the per-
/// connection or global admission caps are answered `err overload`
/// immediately instead of queued, and a client that stops reading its
/// responses is closed once `max_write_buffer_bytes` of replies pile
/// up. Memory per connection is O(caps) regardless of how fast the
/// client floods.
///
/// Every request line still gets exactly one response line, and
/// responses to ADMITTED requests arrive in request order; an
/// `err overload` shed is answered immediately, so it may arrive ahead
/// of responses to earlier, still-executing requests. (Order-preserving
/// shedding would require queuing the shed — the unbounded buffering
/// this layer exists to rule out.)
///
/// ## Snapshots
///
/// The server holds no snapshot itself — it serves whatever the
/// `SnapshotStore` behind its `QueryEngine` currently publishes.
/// Publishing a new snapshot while serving is safe and instant:
/// batches already executing finish on their pinned epoch, the next
/// batch sees the new one (`SnapshotStore` semantics). The schema must
/// stay fixed across publishes (request parsing is schema-bound).
///
/// ## Lifecycle
///
///   ServeServer server(&engine, schema, options);
///   server.Start();              // binds; reactor + workers running
///   ... server.port() ...
///   server.Shutdown();           // begin graceful drain (thread-safe)
///   server.Join();               // wait until drained and stopped
///
/// Graceful drain: stop accepting, stop reading, finish every admitted
/// line, flush write buffers (up to `drain_timeout_ms`), close. The
/// CLI translates SIGTERM into exactly this sequence.
class ServeServer {
 public:
  /// `engine` (and the store behind it) must outlive the server.
  /// `schema` is the request-parsing schema — the served snapshot's.
  ServeServer(const QueryEngine* engine, Schema schema,
              const ServerOptions& options);
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  /// Binds and starts the reactor and worker threads. InvalidArgument /
  /// IOError on a bad address or bind failure (nothing started).
  Status Start();

  /// The bound port (after `Start`); resolves `listen.port == 0`.
  uint16_t port() const { return port_; }

  /// Initiates graceful drain. Safe from any thread, idempotent, and
  /// non-blocking — pair with `Join()` to wait for completion.
  void Shutdown();

  /// Waits for the reactor and workers to stop (after `Shutdown`, or
  /// returns immediately if never started).
  void Join();

  /// True from `Start` until the drain completes.
  bool running() const { return running_.load(std::memory_order_acquire); }

  ServerStats stats() const;

  /// The registry backing the `stats` verb: `options.metrics` when
  /// provided, the server's own otherwise. Valid after `Start()`.
  const MetricsRegistry* metrics() const { return registry_; }

 private:
  struct WorkItem {
    uint64_t conn_id = 0;
    std::vector<PendingLine> lines;
    int64_t dequeue_ns = 0;  ///< stamped by the worker (queue wait)
  };
  /// Per-stage timings of one trace-sampled request (steady ns).
  struct TraceRecord {
    uint64_t request_id = 0;
    int64_t admit_ns = 0;    ///< admission timestamp
    int64_t parse_ns = 0;    ///< time parsing this line
    int64_t queue_ns = 0;    ///< admission -> worker dequeue
    int64_t execute_ns = 0;  ///< engine batch execution (shared by batch)
    int64_t done_ns = 0;     ///< timestamp when the worker finished encoding
  };
  struct Completion {
    uint64_t conn_id = 0;
    size_t num_lines = 0;       ///< admission-queue slots to release
    std::string response_bytes; ///< newline-terminated response lines
    /// Admission timestamps of the batch's lines (request latency).
    std::vector<int64_t> admit_ns;
    /// Trace records for the batch's sampled lines (usually empty).
    std::vector<TraceRecord> traces;
  };

  void ReactorLoop();
  void WorkerLoop();

  /// Registers the server's own metric families (`server.*`) with
  /// `registry_` and attaches the engine's. Called once from `Start()`
  /// before any thread exists.
  void RegisterMetrics();

  /// Folds this connection's read/write buffer sizes into the
  /// aggregate buffer gauges (delta vs what was last folded in).
  /// Reactor thread only.
  void SyncConnGauges(ServeConn* conn);

  /// Emits one trace line (reactor thread) for a sampled request whose
  /// response was just queued for flushing.
  void EmitTrace(uint64_t conn_id, const TraceRecord& trace,
                 int64_t flush_done_ns);

  /// Executes one batch: parse each line (hello/parse errors answered
  /// inline), one `ExecuteBatch` for the valid requests, encode in
  /// original line order. Runs on worker threads; touches only the
  /// engine and the schema (both immutable here).
  Completion ExecuteWork(WorkItem work);

  // Reactor-thread helpers (all connection state is reactor-owned).
  void AcceptNewConnections();
  void HandleReadable(ServeConn* conn);
  void HandleWritable(ServeConn* conn);
  void SubmitBatchIfReady(ServeConn* conn);
  void ProcessCompletions();
  void FlushWrites(ServeConn* conn);
  void UpdateEpollInterest(ServeConn* conn);
  void CloseConn(uint64_t conn_id);
  void ReapIdleConns(int64_t now_ms);
  void BeginDrain();
  bool DrainComplete() const;

  const QueryEngine* engine_;
  const Schema schema_;
  ServerOptions options_;

  OwnedFd listen_fd_;
  OwnedFd epoll_fd_;
  OwnedFd wake_fd_;  ///< eventfd: completions ready / shutdown requested
  uint16_t port_ = 0;

  std::thread reactor_;
  std::vector<std::thread> workers_;

  std::atomic<bool> started_{false};
  std::atomic<bool> running_{false};
  std::atomic<bool> shutdown_requested_{false};

  // Reactor-owned (no locking: reactor thread only).
  std::unordered_map<uint64_t, std::unique_ptr<ServeConn>> conns_;
  uint64_t next_conn_id_ = 0;
  size_t global_pending_ = 0;  ///< admitted lines not yet completed
  uint64_t next_request_id_ = 0;
  uint64_t trace_seq_ = 0;  ///< admitted-line counter for sampling
  bool draining_ = false;
  int64_t drain_deadline_ms_ = 0;

  // Work-queue capability: the reactor-to-worker handoff. Guards the
  // batch queue and the stop flag the reactor raises at drain end.
  Mutex work_mu_;
  CondVar work_ready_;
  std::deque<WorkItem> work_queue_ GUARDED_BY(work_mu_);
  bool workers_stop_ GUARDED_BY(work_mu_) = false;

  // Completion-queue capability: the worker-to-reactor handoff (the
  // reactor drains it after a wake_fd_ tick). Never held together with
  // work_mu_, so the two handoff locks cannot deadlock.
  Mutex completion_mu_;
  std::vector<Completion> completions_ GUARDED_BY(completion_mu_);

  // Observability. Counters/gauges are internally thread-safe; the
  // registry is set up in Start() before any server thread runs.
  MetricsRegistry* registry_ = nullptr;
  std::unique_ptr<MetricsRegistry> own_registry_;
  Counter connections_accepted_;
  Counter connections_closed_;
  Counter lines_received_;
  Counter lines_admitted_;
  Counter responses_sent_;
  Counter overload_responses_;
  Counter parse_errors_;
  Counter idle_reaped_;
  Counter batches_executed_;
  Counter traces_emitted_;
  Gauge connections_;            ///< currently open connections
  Gauge admission_queue_depth_;  ///< == global_pending_
  Gauge work_queue_depth_;       ///< batches awaiting a worker
  Gauge read_buffer_bytes_;      ///< partial request bytes, all conns
  Gauge write_buffer_bytes_;     ///< unsent response bytes, all conns
  LatencyHistogram request_ns_;  ///< admission -> response flushed
};

}  // namespace qikey

#endif  // QIKEY_SERVE_SERVER_H_
