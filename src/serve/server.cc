#include "serve/server.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>
#include <utility>

namespace qikey {

namespace {

/// epoll user-data ids for the two non-connection descriptors;
/// connection ids start above these and are never reused.
constexpr uint64_t kWakeId = 0;
constexpr uint64_t kListenId = 1;
constexpr uint64_t kFirstConnId = 2;

constexpr int kEpollBatch = 64;
constexpr int kEpollTickMs = 50;  ///< timeout/reap granularity

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The server's reply to a client's `QIKEY/<n>` version assertion.
std::string HelloAck(ProtocolVersion version) {
  return "ok v" + std::to_string(static_cast<uint32_t>(version));
}

}  // namespace

ServeServer::ServeServer(const QueryEngine* engine, Schema schema,
                         const ServerOptions& options)
    : engine_(engine),
      schema_(std::move(schema)),
      options_(options),
      next_conn_id_(kFirstConnId) {}

ServeServer::~ServeServer() {
  Shutdown();
  Join();
}

Status ServeServer::Start() {
  if (started_.exchange(true)) {
    return Status::InvalidArgument("server already started");
  }
  if (options_.max_line_bytes == 0 || options_.max_pending_per_conn == 0 ||
      options_.max_pending_global == 0 || options_.max_batch == 0) {
    return Status::InvalidArgument(
        "max_line_bytes, admission caps, and max_batch must be positive");
  }
  Result<OwnedFd> listen_fd = OpenListenSocket(options_.listen, &port_);
  if (!listen_fd.ok()) return listen_fd.status();
  listen_fd_ = std::move(*listen_fd);

  epoll_fd_ = OwnedFd(::epoll_create1(EPOLL_CLOEXEC));
  if (!epoll_fd_.valid()) {
    return Status::IOError(std::string("epoll_create1: ") +
                           std::strerror(errno));
  }
  wake_fd_ = OwnedFd(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
  if (!wake_fd_.valid()) {
    return Status::IOError(std::string("eventfd: ") + std::strerror(errno));
  }
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.u64 = kWakeId;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, wake_fd_.get(), &event) <
      0) {
    return Status::IOError(std::string("epoll_ctl(wake): ") +
                           std::strerror(errno));
  }
  event.events = EPOLLIN;
  event.data.u64 = kListenId;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, listen_fd_.get(),
                  &event) < 0) {
    return Status::IOError(std::string("epoll_ctl(listen): ") +
                           std::strerror(errno));
  }

  running_.store(true, std::memory_order_release);
  size_t workers = options_.worker_threads > 0 ? options_.worker_threads : 1;
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  reactor_ = std::thread([this] { ReactorLoop(); });
  return Status::OK();
}

void ServeServer::Shutdown() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (shutdown_requested_.exchange(true)) return;
  uint64_t one = 1;
  // Best-effort wake; the reactor also polls the flag every tick.
  [[maybe_unused]] ssize_t n =
      ::write(wake_fd_.get(), &one, sizeof(one));
}

void ServeServer::Join() {
  if (reactor_.joinable()) reactor_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

ServerStats ServeServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

// ---------------------------------------------------------------------------
// Reactor thread
// ---------------------------------------------------------------------------

void ServeServer::ReactorLoop() {
  epoll_event events[kEpollBatch];
  while (true) {
    int n = ::epoll_wait(epoll_fd_.get(), events, kEpollBatch, kEpollTickMs);
    if (n < 0 && errno != EINTR) break;  // epoll itself failed; bail out
    int64_t now_ms = NowMs();

    if (shutdown_requested_.load(std::memory_order_acquire) && !draining_) {
      BeginDrain();
    }

    for (int i = 0; i < std::max(n, 0); ++i) {
      uint64_t id = events[i].data.u64;
      if (id == kWakeId) {
        uint64_t drained;
        while (::read(wake_fd_.get(), &drained, sizeof(drained)) > 0) {
        }
      } else if (id == kListenId) {
        AcceptNewConnections();
      } else {
        // The connection may have been closed by an earlier event in
        // this same batch — look it up fresh.
        auto it = conns_.find(id);
        if (it == conns_.end()) continue;
        ServeConn* conn = it->second.get();
        if (events[i].events & (EPOLLHUP | EPOLLERR)) {
          CloseConn(id);
          continue;
        }
        if (events[i].events & EPOLLIN) {
          conn->last_activity_ms = now_ms;
          HandleReadable(conn);
          if (conns_.find(id) == conns_.end()) continue;
        }
        if (events[i].events & EPOLLOUT) HandleWritable(conn);
      }
    }

    ProcessCompletions();
    ReapIdleConns(now_ms);

    if (draining_) {
      if (now_ms >= drain_deadline_ms_ && !conns_.empty()) {
        // Drain timeout: force-close whatever is left (stalled clients,
        // wedged batches). Collect ids first — CloseConn mutates the map.
        std::vector<uint64_t> remaining;
        remaining.reserve(conns_.size());
        for (const auto& [id, conn] : conns_) remaining.push_back(id);
        for (uint64_t id : remaining) CloseConn(id);
      }
      if (DrainComplete()) break;
    }
  }

  // Stop the workers: they finish the queue (it is empty by the time
  // drain completes, non-empty only after a forced drain) and exit.
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    workers_stop_ = true;
  }
  work_ready_.notify_all();
  running_.store(false, std::memory_order_release);
}

void ServeServer::AcceptNewConnections() {
  while (true) {
    int raw = ::accept4(listen_fd_.get(), nullptr, nullptr,
                        SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (raw < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure (EMFILE, ...): try next tick
    }
    OwnedFd fd(raw);
    if (conns_.size() >= options_.max_connections) {
      // Best effort: tell the client why before dropping it. The
      // socket buffer of a fresh connection always has room for one
      // line, so a short write just means the client never sees it.
      std::string line =
          EncodeErrorLine(ServeErrorCode::kOverload,
                          "connection limit reached") +
          "\n";
      [[maybe_unused]] ssize_t n =
          ::send(fd.get(), line.data(), line.size(), MSG_NOSIGNAL);
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.overload_responses;
      }
      continue;  // OwnedFd closes it
    }
    uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<ServeConn>(std::move(fd), id,
                                            options_.max_line_bytes);
    conn->last_activity_ms = NowMs();
    conn->QueueResponse(FormatHelloLine(kProtocolCurrent));
    epoll_event event{};
    event.events = EPOLLIN | EPOLLOUT;
    event.data.u64 = id;
    if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, conn->fd.get(),
                    &event) < 0) {
      continue;  // conn (and fd) dropped
    }
    ServeConn* raw_conn = conn.get();
    conns_.emplace(id, std::move(conn));
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.connections_accepted;
    }
    FlushWrites(raw_conn);
    if (conns_.find(id) != conns_.end()) UpdateEpollInterest(raw_conn);
  }
}

void ServeServer::HandleReadable(ServeConn* conn) {
  if (draining_ || conn->close_after_flush || conn->peer_eof ||
      conn->splitter.overflowed()) {
    return;
  }
  uint64_t id = conn->id;
  char chunk[16384];
  std::vector<std::string> lines;
  bool framing_lost = false;
  while (true) {
    ssize_t n = ::recv(conn->fd.get(), chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConn(id);
      return;
    }
    if (n == 0) {
      conn->peer_eof = true;
      break;
    }
    if (!conn->splitter.Ingest(std::string_view(chunk, n), &lines)) {
      framing_lost = true;
      break;
    }
  }

  size_t admitted = 0;
  size_t overloaded = 0;
  size_t received = lines.size();
  for (std::string& line : lines) {
    if (conn->close_after_flush) break;  // overload-close already tripped
    bool conn_full = conn->pending.size() + conn->inflight_lines >=
                     options_.max_pending_per_conn;
    if (conn_full || global_pending_ >= options_.max_pending_global) {
      conn->QueueResponse(EncodeErrorLine(
          ServeErrorCode::kOverload,
          conn_full ? "connection request queue full"
                    : "server request queue full"));
      ++overloaded;
      if (options_.close_on_overload) conn->close_after_flush = true;
      continue;
    }
    conn->pending.push_back(std::move(line));
    ++global_pending_;
    ++admitted;
  }
  if (received > 0 || overloaded > 0) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.lines_received += received;
    stats_.overload_responses += overloaded;
    stats_.responses_sent += overloaded;
  }

  if (framing_lost) {
    conn->QueueResponse(EncodeErrorLine(
        ServeErrorCode::kParse,
        "request line exceeds " + std::to_string(options_.max_line_bytes) +
            " bytes"));
    conn->close_after_flush = true;
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.parse_errors;
    ++stats_.responses_sent;
  }

  SubmitBatchIfReady(conn);
  FlushWrites(conn);
  if (conns_.find(id) == conns_.end()) return;
  if ((conn->peer_eof || conn->close_after_flush) && conn->idle()) {
    CloseConn(id);
    return;
  }
  UpdateEpollInterest(conn);
}

void ServeServer::HandleWritable(ServeConn* conn) {
  uint64_t id = conn->id;
  FlushWrites(conn);
  if (conns_.find(id) == conns_.end()) return;
  if ((conn->close_after_flush || conn->peer_eof) && conn->idle()) {
    CloseConn(id);
    return;
  }
  UpdateEpollInterest(conn);
}

void ServeServer::SubmitBatchIfReady(ServeConn* conn) {
  if (conn->inflight_lines > 0 || conn->pending.empty()) return;
  WorkItem work;
  work.conn_id = conn->id;
  size_t take = std::min(conn->pending.size(), options_.max_batch);
  work.lines.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    work.lines.push_back(std::move(conn->pending.front()));
    conn->pending.pop_front();
  }
  conn->inflight_lines = take;
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    work_queue_.push_back(std::move(work));
  }
  work_ready_.notify_one();
}

void ServeServer::ProcessCompletions() {
  std::vector<Completion> done;
  {
    std::lock_guard<std::mutex> lock(completion_mu_);
    done.swap(completions_);
  }
  for (Completion& completion : done) {
    // The admission slots are released even when the connection died
    // while its batch was executing — otherwise a churning client
    // could leak the global queue shut.
    global_pending_ -= completion.num_lines;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.batches_executed;
      stats_.responses_sent += completion.num_lines;
    }
    auto it = conns_.find(completion.conn_id);
    if (it == conns_.end()) continue;
    ServeConn* conn = it->second.get();
    conn->inflight_lines = 0;
    conn->write_buf.append(completion.response_bytes);
    SubmitBatchIfReady(conn);
    FlushWrites(conn);
    if (conns_.find(completion.conn_id) == conns_.end()) continue;
    if ((conn->peer_eof || conn->close_after_flush || draining_) &&
        conn->idle()) {
      CloseConn(completion.conn_id);
      continue;
    }
    UpdateEpollInterest(conn);
  }
}

void ServeServer::FlushWrites(ServeConn* conn) {
  while (conn->unsent_bytes() > 0) {
    ssize_t n = ::send(conn->fd.get(), conn->write_buf.data() + conn->write_pos,
                       conn->unsent_bytes(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConn(conn->id);
      return;
    }
    conn->write_pos += static_cast<size_t>(n);
  }
  conn->CompactWriteBuffer();
  // A client that stopped reading its responses does not get to pin
  // arbitrary memory: past the cap the connection is dropped.
  if (conn->unsent_bytes() > options_.max_write_buffer_bytes) {
    CloseConn(conn->id);
  }
}

void ServeServer::UpdateEpollInterest(ServeConn* conn) {
  uint32_t interest = 0;
  bool reading = !draining_ && !conn->close_after_flush && !conn->peer_eof &&
                 !conn->splitter.overflowed();
  if (reading) interest |= EPOLLIN;
  if (conn->unsent_bytes() > 0) interest |= EPOLLOUT;
  epoll_event event{};
  event.events = interest;
  event.data.u64 = conn->id;
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, conn->fd.get(), &event);
}

void ServeServer::CloseConn(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  // Pending (never-submitted) lines release their admission slots here;
  // in-flight lines release theirs when the orphaned completion lands.
  global_pending_ -= it->second->pending.size();
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, it->second->fd.get(), nullptr);
  conns_.erase(it);
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.connections_closed;
}

void ServeServer::ReapIdleConns(int64_t now_ms) {
  if (options_.idle_timeout_ms <= 0) return;
  std::vector<uint64_t> expired;
  for (const auto& [id, conn] : conns_) {
    // "Idle" = nothing admitted and nothing executing. A half-sent
    // request line (slow loris) is exactly this state, so the cap on
    // silent connections is also the slow-loris bound. Stalled readers
    // (unsent responses piling up) age out the same way.
    if (conn->inflight_lines == 0 && conn->pending.empty() &&
        now_ms - conn->last_activity_ms > options_.idle_timeout_ms) {
      expired.push_back(id);
    }
  }
  if (expired.empty()) return;
  for (uint64_t id : expired) CloseConn(id);
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.idle_reaped += expired.size();
}

void ServeServer::BeginDrain() {
  draining_ = true;
  drain_deadline_ms_ = NowMs() + std::max(options_.drain_timeout_ms, 0);
  // Stop accepting: deregister and close the listen socket so new
  // connections are refused by the kernel, not queued behind a drain.
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, listen_fd_.get(), nullptr);
  listen_fd_.Reset();
  // Stop reading; every already-admitted line still executes and every
  // response still flushes. Idle connections close immediately.
  std::vector<uint64_t> idle;
  for (const auto& [id, conn] : conns_) {
    if (conn->idle()) {
      idle.push_back(id);
    } else {
      UpdateEpollInterest(conn.get());
    }
  }
  for (uint64_t id : idle) CloseConn(id);
}

bool ServeServer::DrainComplete() const { return conns_.empty(); }

// ---------------------------------------------------------------------------
// Worker threads
// ---------------------------------------------------------------------------

void ServeServer::WorkerLoop() {
  while (true) {
    WorkItem work;
    {
      std::unique_lock<std::mutex> lock(work_mu_);
      work_ready_.wait(lock,
                       [this] { return workers_stop_ || !work_queue_.empty(); });
      if (work_queue_.empty()) return;  // stop requested and queue drained
      work = std::move(work_queue_.front());
      work_queue_.pop_front();
    }
    Completion completion = ExecuteWork(std::move(work));
    {
      std::lock_guard<std::mutex> lock(completion_mu_);
      completions_.push_back(std::move(completion));
    }
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n =
        ::write(wake_fd_.get(), &one, sizeof(one));
  }
}

ServeServer::Completion ServeServer::ExecuteWork(WorkItem work) {
  Completion completion;
  completion.conn_id = work.conn_id;
  completion.num_lines = work.lines.size();

  // Parse every line; hello assertions and parse failures are answered
  // inline, everything else joins one engine batch.
  std::vector<std::string> immediate(work.lines.size());
  std::vector<int> slot(work.lines.size(), -1);
  std::vector<QueryRequest> requests;
  size_t parse_errors = 0;
  for (size_t i = 0; i < work.lines.size(); ++i) {
    const std::string& line = work.lines[i];
    if (IsHelloLine(line)) {
      Result<ProtocolVersion> version = ParseHelloLine(line);
      immediate[i] = version.ok()
                         ? HelloAck(*version)
                         : EncodeErrorLine(ServeErrorCode::kValidation,
                                           version.status().message());
      continue;
    }
    Result<QueryRequest> request = ParseQueryRequest(line, schema_);
    if (!request.ok()) {
      immediate[i] = EncodeErrorLine(ServeErrorCode::kParse,
                                     request.status().message());
      ++parse_errors;
      continue;
    }
    slot[i] = static_cast<int>(requests.size());
    requests.push_back(std::move(*request));
  }

  std::vector<QueryResponse> responses;
  if (!requests.empty()) {
    // One pinned snapshot per batch: a concurrent Publish never mixes
    // epochs inside it (QueryEngine semantics).
    responses = engine_->ExecuteBatch(requests);
  }

  for (size_t i = 0; i < work.lines.size(); ++i) {
    if (slot[i] >= 0) {
      completion.response_bytes += EncodeResponseLine(
          requests[slot[i]], responses[slot[i]], schema_);
    } else {
      completion.response_bytes += immediate[i];
    }
    completion.response_bytes += '\n';
  }
  if (parse_errors > 0) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.parse_errors += parse_errors;
  }
  return completion;
}

}  // namespace qikey
