#include "serve/server.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>
#include <utility>

#include "util/jsonw.h"
#include "util/logging.h"

namespace qikey {

namespace {

/// epoll user-data ids for the two non-connection descriptors;
/// connection ids start above these and are never reused.
constexpr uint64_t kWakeId = 0;
constexpr uint64_t kListenId = 1;
constexpr uint64_t kFirstConnId = 2;

constexpr int kEpollBatch = 64;
constexpr int kEpollTickMs = 50;  ///< timeout/reap granularity

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The server's reply to a client's `QIKEY/<n>` version assertion.
std::string HelloAck(ProtocolVersion version) {
  return "ok v" + std::to_string(static_cast<uint32_t>(version));
}

}  // namespace

ServeServer::ServeServer(const QueryEngine* engine, Schema schema,
                         const ServerOptions& options)
    : engine_(engine),
      schema_(std::move(schema)),
      options_(options),
      next_conn_id_(kFirstConnId) {}

ServeServer::~ServeServer() {
  Shutdown();
  Join();
}

Status ServeServer::Start() {
  if (started_.exchange(true)) {
    return Status::InvalidArgument("server already started");
  }
  if (options_.max_line_bytes == 0 || options_.max_pending_per_conn == 0 ||
      options_.max_pending_global == 0 || options_.max_batch == 0) {
    return Status::InvalidArgument(
        "max_line_bytes, admission caps, and max_batch must be positive");
  }
  Result<OwnedFd> listen_fd = OpenListenSocket(options_.listen, &port_);
  if (!listen_fd.ok()) return listen_fd.status();
  listen_fd_ = std::move(*listen_fd);

  epoll_fd_ = OwnedFd(::epoll_create1(EPOLL_CLOEXEC));
  if (!epoll_fd_.valid()) {
    return Status::IOError(std::string("epoll_create1: ") +
                           std::strerror(errno));
  }
  wake_fd_ = OwnedFd(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
  if (!wake_fd_.valid()) {
    return Status::IOError(std::string("eventfd: ") + std::strerror(errno));
  }
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.u64 = kWakeId;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, wake_fd_.get(), &event) <
      0) {
    return Status::IOError(std::string("epoll_ctl(wake): ") +
                           std::strerror(errno));
  }
  event.events = EPOLLIN;
  event.data.u64 = kListenId;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, listen_fd_.get(),
                  &event) < 0) {
    return Status::IOError(std::string("epoll_ctl(listen): ") +
                           std::strerror(errno));
  }

  // Registry wiring happens strictly before any server thread exists,
  // so workers rendering the `stats` verb see a fully built registry
  // without synchronization beyond thread creation.
  RegisterMetrics();

  running_.store(true, std::memory_order_release);
  size_t workers = options_.worker_threads > 0 ? options_.worker_threads : 1;
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  reactor_ = std::thread([this] { ReactorLoop(); });
  return Status::OK();
}

void ServeServer::Shutdown() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (shutdown_requested_.exchange(true)) return;
  uint64_t one = 1;
  // Best-effort wake; the reactor also polls the flag every tick.
  [[maybe_unused]] ssize_t n =
      ::write(wake_fd_.get(), &one, sizeof(one));
}

void ServeServer::Join() {
  if (reactor_.joinable()) reactor_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

ServerStats ServeServer::stats() const {
  ServerStats stats;
  stats.connections_accepted = connections_accepted_.value();
  stats.connections_closed = connections_closed_.value();
  stats.lines_received = lines_received_.value();
  stats.responses_sent = responses_sent_.value();
  stats.overload_responses = overload_responses_.value();
  stats.parse_errors = parse_errors_.value();
  stats.idle_reaped = idle_reaped_.value();
  stats.batches_executed = batches_executed_.value();
  return stats;
}

void ServeServer::RegisterMetrics() {
  registry_ = options_.metrics;
  if (registry_ == nullptr) {
    own_registry_ = std::make_unique<MetricsRegistry>();
    registry_ = own_registry_.get();
  }
  registry_->RegisterCounter("server.connections_accepted",
                             &connections_accepted_);
  registry_->RegisterCounter("server.connections_closed",
                             &connections_closed_);
  registry_->RegisterCounter("server.lines_received", &lines_received_);
  registry_->RegisterCounter("server.lines_admitted", &lines_admitted_);
  registry_->RegisterCounter("server.responses_sent", &responses_sent_);
  registry_->RegisterCounter("server.overload_responses",
                             &overload_responses_);
  registry_->RegisterCounter("server.parse_errors", &parse_errors_);
  registry_->RegisterCounter("server.idle_reaped", &idle_reaped_);
  registry_->RegisterCounter("server.batches_executed", &batches_executed_);
  registry_->RegisterCounter("server.traces_emitted", &traces_emitted_);
  registry_->RegisterGauge("server.connections", &connections_);
  registry_->RegisterGauge("server.admission_queue_depth",
                           &admission_queue_depth_);
  registry_->RegisterGauge("server.work_queue_depth", &work_queue_depth_);
  registry_->RegisterGauge("server.read_buffer_bytes", &read_buffer_bytes_);
  registry_->RegisterGauge("server.write_buffer_bytes", &write_buffer_bytes_);
  registry_->RegisterHistogram("server.request_ns", &request_ns_);
  engine_->RegisterMetrics(registry_);
}

void ServeServer::SyncConnGauges(ServeConn* conn) {
  size_t read_bytes = conn->splitter.buffered_bytes();
  size_t write_bytes = conn->unsent_bytes();
  read_buffer_bytes_.Add(static_cast<int64_t>(read_bytes) -
                         static_cast<int64_t>(conn->obs_read_bytes));
  write_buffer_bytes_.Add(static_cast<int64_t>(write_bytes) -
                          static_cast<int64_t>(conn->obs_write_bytes));
  conn->obs_read_bytes = read_bytes;
  conn->obs_write_bytes = write_bytes;
}

void ServeServer::EmitTrace(uint64_t conn_id, const TraceRecord& trace,
                            int64_t flush_done_ns) {
  std::string line;
  line.reserve(192);
  line += "{\"type\":\"trace\",\"request_id\":";
  line += std::to_string(trace.request_id);
  line += ",\"conn\":";
  line += std::to_string(conn_id);
  line += ",\"parse_ns\":";
  line += std::to_string(trace.parse_ns);
  line += ",\"queue_ns\":";
  line += std::to_string(trace.queue_ns);
  line += ",\"execute_ns\":";
  line += std::to_string(trace.execute_ns);
  line += ",\"flush_ns\":";
  line += std::to_string(flush_done_ns - trace.done_ns);
  line += ",\"total_ns\":";
  line += std::to_string(flush_done_ns - trace.admit_ns);
  line += '}';
  traces_emitted_.Increment();
  if (options_.trace_sink) {
    options_.trace_sink(line);
  } else {
    WriteRawLine(line);
  }
}

// ---------------------------------------------------------------------------
// Reactor thread
// ---------------------------------------------------------------------------

void ServeServer::ReactorLoop() {
  epoll_event events[kEpollBatch];
  while (true) {
    int n = ::epoll_wait(epoll_fd_.get(), events, kEpollBatch, kEpollTickMs);
    if (n < 0 && errno != EINTR) break;  // epoll itself failed; bail out
    int64_t now_ms = NowMs();

    if (shutdown_requested_.load(std::memory_order_acquire) && !draining_) {
      BeginDrain();
    }

    for (int i = 0; i < std::max(n, 0); ++i) {
      uint64_t id = events[i].data.u64;
      if (id == kWakeId) {
        uint64_t drained;
        while (::read(wake_fd_.get(), &drained, sizeof(drained)) > 0) {
        }
      } else if (id == kListenId) {
        AcceptNewConnections();
      } else {
        // The connection may have been closed by an earlier event in
        // this same batch — look it up fresh.
        auto it = conns_.find(id);
        if (it == conns_.end()) continue;
        ServeConn* conn = it->second.get();
        if (events[i].events & (EPOLLHUP | EPOLLERR)) {
          CloseConn(id);
          continue;
        }
        if (events[i].events & EPOLLIN) {
          conn->last_activity_ms = now_ms;
          HandleReadable(conn);
          if (conns_.find(id) == conns_.end()) continue;
        }
        if (events[i].events & EPOLLOUT) HandleWritable(conn);
      }
    }

    ProcessCompletions();
    ReapIdleConns(now_ms);

    if (draining_) {
      if (now_ms >= drain_deadline_ms_ && !conns_.empty()) {
        // Drain timeout: force-close whatever is left (stalled clients,
        // wedged batches). Collect ids first — CloseConn mutates the map.
        std::vector<uint64_t> remaining;
        remaining.reserve(conns_.size());
        for (const auto& [id, conn] : conns_) remaining.push_back(id);
        for (uint64_t id : remaining) CloseConn(id);
      }
      if (DrainComplete()) break;
    }
  }

  // Stop the workers: they finish the queue (it is empty by the time
  // drain completes, non-empty only after a forced drain) and exit.
  {
    MutexLock lock(work_mu_);
    workers_stop_ = true;
  }
  work_ready_.NotifyAll();
  running_.store(false, std::memory_order_release);
}

void ServeServer::AcceptNewConnections() {
  while (true) {
    int raw = ::accept4(listen_fd_.get(), nullptr, nullptr,
                        SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (raw < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure (EMFILE, ...): try next tick
    }
    OwnedFd fd(raw);
    if (conns_.size() >= options_.max_connections) {
      // Best effort: tell the client why before dropping it. The
      // socket buffer of a fresh connection always has room for one
      // line, so a short write just means the client never sees it.
      std::string line =
          EncodeErrorLine(ServeErrorCode::kOverload,
                          "connection limit reached") +
          "\n";
      [[maybe_unused]] ssize_t n =
          ::send(fd.get(), line.data(), line.size(), MSG_NOSIGNAL);
      overload_responses_.Increment();
      continue;  // OwnedFd closes it
    }
    uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<ServeConn>(std::move(fd), id,
                                            options_.max_line_bytes);
    conn->last_activity_ms = NowMs();
    conn->QueueResponse(FormatHelloLine(kProtocolCurrent));
    epoll_event event{};
    event.events = EPOLLIN | EPOLLOUT;
    event.data.u64 = id;
    if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, conn->fd.get(),
                    &event) < 0) {
      continue;  // conn (and fd) dropped
    }
    ServeConn* raw_conn = conn.get();
    conns_.emplace(id, std::move(conn));
    connections_accepted_.Increment();
    connections_.Set(static_cast<int64_t>(conns_.size()));
    FlushWrites(raw_conn);
    if (conns_.find(id) != conns_.end()) {
      SyncConnGauges(raw_conn);
      UpdateEpollInterest(raw_conn);
    }
  }
}

void ServeServer::HandleReadable(ServeConn* conn) {
  if (draining_ || conn->close_after_flush || conn->peer_eof ||
      conn->splitter.overflowed()) {
    return;
  }
  uint64_t id = conn->id;
  char chunk[16384];
  std::vector<std::string> lines;
  bool framing_lost = false;
  while (true) {
    ssize_t n = ::recv(conn->fd.get(), chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConn(id);
      return;
    }
    if (n == 0) {
      conn->peer_eof = true;
      break;
    }
    if (!conn->splitter.Ingest(std::string_view(chunk, n), &lines)) {
      framing_lost = true;
      break;
    }
  }

  size_t admitted = 0;
  size_t overloaded = 0;
  size_t received = lines.size();
  int64_t admit_ns = received > 0 ? NowNs() : 0;
  for (std::string& line : lines) {
    if (conn->close_after_flush) break;  // overload-close already tripped
    bool conn_full = conn->pending.size() + conn->inflight_lines >=
                     options_.max_pending_per_conn;
    if (conn_full || global_pending_ >= options_.max_pending_global) {
      conn->QueueResponse(EncodeErrorLine(
          ServeErrorCode::kOverload,
          conn_full ? "connection request queue full"
                    : "server request queue full"));
      ++overloaded;
      if (options_.close_on_overload) conn->close_after_flush = true;
      continue;
    }
    PendingLine pending;
    pending.line = std::move(line);
    pending.admit_ns = admit_ns;
    pending.request_id = next_request_id_++;
    pending.traced = options_.trace_sample > 0 &&
                     (++trace_seq_ % options_.trace_sample) == 0;
    conn->pending.push_back(std::move(pending));
    ++global_pending_;
    ++admitted;
  }
  lines_received_.Increment(received);
  lines_admitted_.Increment(admitted);
  overload_responses_.Increment(overloaded);
  responses_sent_.Increment(overloaded);
  admission_queue_depth_.Set(static_cast<int64_t>(global_pending_));

  if (framing_lost) {
    conn->QueueResponse(EncodeErrorLine(
        ServeErrorCode::kParse,
        "request line exceeds " + std::to_string(options_.max_line_bytes) +
            " bytes"));
    conn->close_after_flush = true;
    parse_errors_.Increment();
    responses_sent_.Increment();
  }

  SubmitBatchIfReady(conn);
  FlushWrites(conn);
  if (conns_.find(id) == conns_.end()) return;
  SyncConnGauges(conn);
  if ((conn->peer_eof || conn->close_after_flush) && conn->idle()) {
    CloseConn(id);
    return;
  }
  UpdateEpollInterest(conn);
}

void ServeServer::HandleWritable(ServeConn* conn) {
  uint64_t id = conn->id;
  FlushWrites(conn);
  if (conns_.find(id) == conns_.end()) return;
  SyncConnGauges(conn);
  if ((conn->close_after_flush || conn->peer_eof) && conn->idle()) {
    CloseConn(id);
    return;
  }
  UpdateEpollInterest(conn);
}

void ServeServer::SubmitBatchIfReady(ServeConn* conn) {
  if (conn->inflight_lines > 0 || conn->pending.empty()) return;
  WorkItem work;
  work.conn_id = conn->id;
  size_t take = std::min(conn->pending.size(), options_.max_batch);
  work.lines.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    work.lines.push_back(std::move(conn->pending.front()));
    conn->pending.pop_front();
  }
  conn->inflight_lines = take;
  {
    MutexLock lock(work_mu_);
    work_queue_.push_back(std::move(work));
    work_queue_depth_.Set(static_cast<int64_t>(work_queue_.size()));
  }
  work_ready_.NotifyOne();
}

void ServeServer::ProcessCompletions() {
  std::vector<Completion> done;
  {
    MutexLock lock(completion_mu_);
    done.swap(completions_);
  }
  for (Completion& completion : done) {
    // The admission slots are released even when the connection died
    // while its batch was executing — otherwise a churning client
    // could leak the global queue shut.
    global_pending_ -= completion.num_lines;
    batches_executed_.Increment();
    responses_sent_.Increment(completion.num_lines);
    admission_queue_depth_.Set(static_cast<int64_t>(global_pending_));
    // Admission -> flush latency, recorded BEFORE the response bytes
    // can reach the client: a lockstep client therefore always
    // observes its own request already counted, which is what makes
    // `stats` output reproducible across identical request sequences.
    int64_t flushed_ns = NowNs();
    for (int64_t admitted_at : completion.admit_ns) {
      request_ns_.Record(flushed_ns - admitted_at);
    }
    auto it = conns_.find(completion.conn_id);
    if (it == conns_.end()) continue;
    ServeConn* conn = it->second.get();
    conn->inflight_lines = 0;
    conn->write_buf.append(completion.response_bytes);
    SubmitBatchIfReady(conn);
    FlushWrites(conn);
    if (!completion.traces.empty()) {
      int64_t flush_done_ns = NowNs();
      for (const TraceRecord& trace : completion.traces) {
        EmitTrace(completion.conn_id, trace, flush_done_ns);
      }
    }
    if (conns_.find(completion.conn_id) == conns_.end()) continue;
    SyncConnGauges(conn);
    if ((conn->peer_eof || conn->close_after_flush || draining_) &&
        conn->idle()) {
      CloseConn(completion.conn_id);
      continue;
    }
    UpdateEpollInterest(conn);
  }
}

void ServeServer::FlushWrites(ServeConn* conn) {
  while (conn->unsent_bytes() > 0) {
    ssize_t n = ::send(conn->fd.get(), conn->write_buf.data() + conn->write_pos,
                       conn->unsent_bytes(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConn(conn->id);
      return;
    }
    conn->write_pos += static_cast<size_t>(n);
  }
  conn->CompactWriteBuffer();
  // A client that stopped reading its responses does not get to pin
  // arbitrary memory: past the cap the connection is dropped.
  if (conn->unsent_bytes() > options_.max_write_buffer_bytes) {
    CloseConn(conn->id);
  }
}

void ServeServer::UpdateEpollInterest(ServeConn* conn) {
  uint32_t interest = 0;
  bool reading = !draining_ && !conn->close_after_flush && !conn->peer_eof &&
                 !conn->splitter.overflowed();
  if (reading) interest |= EPOLLIN;
  if (conn->unsent_bytes() > 0) interest |= EPOLLOUT;
  epoll_event event{};
  event.events = interest;
  event.data.u64 = conn->id;
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, conn->fd.get(), &event);
}

void ServeServer::CloseConn(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  // Pending (never-submitted) lines release their admission slots here;
  // in-flight lines release theirs when the orphaned completion lands.
  global_pending_ -= it->second->pending.size();
  admission_queue_depth_.Set(static_cast<int64_t>(global_pending_));
  // Back out this connection's contribution to the aggregate buffer
  // gauges (whatever was last folded in).
  read_buffer_bytes_.Add(-static_cast<int64_t>(it->second->obs_read_bytes));
  write_buffer_bytes_.Add(-static_cast<int64_t>(it->second->obs_write_bytes));
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, it->second->fd.get(), nullptr);
  conns_.erase(it);
  connections_closed_.Increment();
  connections_.Set(static_cast<int64_t>(conns_.size()));
}

void ServeServer::ReapIdleConns(int64_t now_ms) {
  if (options_.idle_timeout_ms <= 0) return;
  std::vector<uint64_t> expired;
  for (const auto& [id, conn] : conns_) {
    // "Idle" = nothing admitted and nothing executing. A half-sent
    // request line (slow loris) is exactly this state, so the cap on
    // silent connections is also the slow-loris bound. Stalled readers
    // (unsent responses piling up) age out the same way.
    if (conn->inflight_lines == 0 && conn->pending.empty() &&
        now_ms - conn->last_activity_ms > options_.idle_timeout_ms) {
      expired.push_back(id);
    }
  }
  if (expired.empty()) return;
  for (uint64_t id : expired) CloseConn(id);
  idle_reaped_.Increment(expired.size());
}

void ServeServer::BeginDrain() {
  draining_ = true;
  drain_deadline_ms_ = NowMs() + std::max(options_.drain_timeout_ms, 0);
  // Stop accepting: deregister and close the listen socket so new
  // connections are refused by the kernel, not queued behind a drain.
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, listen_fd_.get(), nullptr);
  listen_fd_.Reset();
  // Stop reading; every already-admitted line still executes and every
  // response still flushes. Idle connections close immediately.
  std::vector<uint64_t> idle;
  for (const auto& [id, conn] : conns_) {
    if (conn->idle()) {
      idle.push_back(id);
    } else {
      UpdateEpollInterest(conn.get());
    }
  }
  for (uint64_t id : idle) CloseConn(id);
}

bool ServeServer::DrainComplete() const { return conns_.empty(); }

// ---------------------------------------------------------------------------
// Worker threads
// ---------------------------------------------------------------------------

void ServeServer::WorkerLoop() {
  while (true) {
    WorkItem work;
    {
      MutexLock lock(work_mu_);
      while (!workers_stop_ && work_queue_.empty()) work_ready_.Wait(work_mu_);
      if (work_queue_.empty()) return;  // stop requested and queue drained
      work = std::move(work_queue_.front());
      work_queue_.pop_front();
      work_queue_depth_.Set(static_cast<int64_t>(work_queue_.size()));
    }
    work.dequeue_ns = NowNs();
    Completion completion = ExecuteWork(std::move(work));
    {
      MutexLock lock(completion_mu_);
      completions_.push_back(std::move(completion));
    }
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n =
        ::write(wake_fd_.get(), &one, sizeof(one));
  }
}

ServeServer::Completion ServeServer::ExecuteWork(WorkItem work) {
  Completion completion;
  completion.conn_id = work.conn_id;
  completion.num_lines = work.lines.size();
  completion.admit_ns.reserve(work.lines.size());
  for (const PendingLine& pending : work.lines) {
    completion.admit_ns.push_back(pending.admit_ns);
  }

  // Parse every line; hello assertions, the `stats` admin verb, and
  // parse failures are answered inline, everything else joins one
  // engine batch.
  std::vector<std::string> immediate(work.lines.size());
  std::vector<int> slot(work.lines.size(), -1);
  std::vector<int64_t> parse_ns(work.lines.size(), 0);
  std::vector<QueryRequest> requests;
  size_t parse_errors = 0;
  bool any_traced = false;
  for (size_t i = 0; i < work.lines.size(); ++i) {
    const std::string& line = work.lines[i].line;
    any_traced |= work.lines[i].traced;
    int64_t parse_start = work.lines[i].traced ? NowNs() : 0;
    if (line == kStatsVerb) {
      // Rendered by the server, not the engine: one consistent
      // snapshot of every registered family as a single `ok` line.
      immediate[i] = "ok " + registry_->RenderJson();
    } else if (IsHelloLine(line)) {
      Result<ProtocolVersion> version = ParseHelloLine(line);
      immediate[i] = version.ok()
                         ? HelloAck(*version)
                         : EncodeErrorLine(ServeErrorCode::kValidation,
                                           version.status().message());
    } else {
      Result<QueryRequest> request = ParseQueryRequest(line, schema_);
      if (!request.ok()) {
        immediate[i] = EncodeErrorLine(ServeErrorCode::kParse,
                                       request.status().message());
        ++parse_errors;
      } else {
        slot[i] = static_cast<int>(requests.size());
        requests.push_back(std::move(*request));
      }
    }
    if (work.lines[i].traced) parse_ns[i] = NowNs() - parse_start;
  }

  std::vector<QueryResponse> responses;
  int64_t execute_ns = 0;
  if (!requests.empty()) {
    // One pinned snapshot per batch: a concurrent Publish never mixes
    // epochs inside it (QueryEngine semantics).
    int64_t execute_start = any_traced ? NowNs() : 0;
    responses = engine_->ExecuteBatch(requests);
    if (any_traced) execute_ns = NowNs() - execute_start;
  }

  for (size_t i = 0; i < work.lines.size(); ++i) {
    if (slot[i] >= 0) {
      completion.response_bytes += EncodeResponseLine(
          requests[slot[i]], responses[slot[i]], schema_);
    } else {
      completion.response_bytes += immediate[i];
    }
    completion.response_bytes += '\n';
  }
  if (any_traced) {
    int64_t done_ns = NowNs();
    for (size_t i = 0; i < work.lines.size(); ++i) {
      if (!work.lines[i].traced) continue;
      TraceRecord trace;
      trace.request_id = work.lines[i].request_id;
      trace.admit_ns = work.lines[i].admit_ns;
      trace.parse_ns = parse_ns[i];
      trace.queue_ns = work.dequeue_ns - work.lines[i].admit_ns;
      // Batch-shared: the engine executes the whole batch at once, so
      // a sampled line is attributed the batch's execute wall time.
      trace.execute_ns = slot[i] >= 0 ? execute_ns : 0;
      trace.done_ns = done_ns;
      completion.traces.push_back(trace);
    }
  }
  parse_errors_.Increment(parse_errors);
  return completion;
}

}  // namespace qikey
