#ifndef QIKEY_SERVE_VERDICT_CACHE_H_
#define QIKEY_SERVE_VERDICT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/attribute_set.h"
#include "core/filter.h"
#include "util/mutex.h"

namespace qikey {

/// Options for `VerdictCache`.
struct VerdictCacheOptions {
  /// Total retained verdicts across all shards; 0 disables the cache
  /// (`Lookup` always misses, `Insert` is a no-op).
  size_t capacity = 4096;
  /// Lock shards. Requests hash to a shard by (epoch, attrs), so
  /// concurrent lookups contend only 1/shards of the time. Clamped to
  /// [1, capacity] when the cache is enabled.
  size_t shards = 16;
};

/// \brief Sharded LRU cache of `is-key` filter verdicts, keyed by
/// (snapshot epoch, attribute set).
///
/// The epoch is part of the key, so publishing a new snapshot never
/// needs an invalidation sweep: entries of dead epochs simply age out
/// of the LRU. Verdicts are deterministic functions of the snapshot,
/// so a hit returns exactly what recomputation would — the cache can
/// change latency, never answers.
class VerdictCache {
 public:
  explicit VerdictCache(const VerdictCacheOptions& options);

  bool enabled() const { return per_shard_capacity_ > 0; }

  /// True (and fills `*verdict`) on a hit; counts hit/miss either way.
  bool Lookup(uint64_t epoch, const AttributeSet& attrs,
              FilterVerdict* verdict);

  /// Records a verdict, evicting the shard's least-recently-used entry
  /// at capacity. Inserting an existing key refreshes its verdict and
  /// recency.
  void Insert(uint64_t epoch, const AttributeSet& attrs,
              FilterVerdict verdict);

  /// Hit/miss/eviction totals, summed over the per-shard counters
  /// (each shard counts under its own lock, so the hot path adds no
  /// shared atomic traffic).
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;
  /// Live entries over all shards (test/diagnostic use; takes each
  /// shard's lock in turn).
  size_t size() const;

 private:
  struct Key {
    uint64_t epoch;
    AttributeSet attrs;
    bool operator==(const Key& other) const {
      return epoch == other.epoch && attrs == other.attrs;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& key) const {
      // splitmix-style spread of the epoch over the set hash.
      uint64_t h = key.attrs.Hash() + key.epoch * 0x9e3779b97f4a7c15ull;
      h ^= h >> 30;
      h *= 0xbf58476d1ce4e5b9ull;
      h ^= h >> 27;
      return static_cast<size_t>(h);
    }
  };
  struct Shard {
    /// Shard capability: guards this shard's LRU list, its index, and
    /// its counters — and nothing of any sibling shard, which is the
    /// whole point of sharding the lock.
    Mutex mu;
    /// Front = most recently used.
    std::list<std::pair<Key, FilterVerdict>> lru GUARDED_BY(mu);
    std::unordered_map<Key, std::list<std::pair<Key, FilterVerdict>>::iterator,
                       KeyHash>
        index GUARDED_BY(mu);
    /// Bumped while the shard lock is already held (no atomics needed).
    uint64_t hits GUARDED_BY(mu) = 0;
    uint64_t misses GUARDED_BY(mu) = 0;
    uint64_t evictions GUARDED_BY(mu) = 0;
  };

  Shard& ShardFor(uint64_t epoch, const AttributeSet& attrs);

  /// Evicts `shard`'s least-recently-used entry if it is at capacity.
  /// Split out so the locking contract is explicit in the signature.
  void EvictIfFullLocked(Shard& shard) REQUIRES(shard.mu);

  size_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Misses recorded while the cache is disabled (no shard to charge).
  std::atomic<uint64_t> disabled_misses_{0};
};

}  // namespace qikey

#endif  // QIKEY_SERVE_VERDICT_CACHE_H_
