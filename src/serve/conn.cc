#include "serve/conn.h"

namespace qikey {

bool LineSplitter::Ingest(std::string_view bytes,
                          std::vector<std::string>* out) {
  if (overflowed_) return false;
  size_t pos = 0;
  while (pos < bytes.size()) {
    size_t eol = bytes.find('\n', pos);
    if (eol == std::string_view::npos) {
      partial_.append(bytes.substr(pos));
      if (partial_.size() > max_line_bytes_) {
        // Framing is lost: we cannot tell where this line would have
        // ended, so no later bytes can be trusted either.
        partial_.clear();
        overflowed_ = true;
        return false;
      }
      return true;
    }
    partial_.append(bytes.substr(pos, eol - pos));
    pos = eol + 1;
    if (partial_.size() > max_line_bytes_) {
      partial_.clear();
      overflowed_ = true;
      return false;
    }
    if (!partial_.empty() && partial_.back() == '\r') partial_.pop_back();
    out->push_back(std::move(partial_));
    partial_.clear();
  }
  return true;
}

}  // namespace qikey
