#ifndef QIKEY_SERVE_CONN_H_
#define QIKEY_SERVE_CONN_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "util/net.h"

namespace qikey {

/// \brief Splits a TCP byte stream into protocol lines under a hard
/// per-line size cap.
///
/// Pure buffer logic (no sockets), so the framing rules — CRLF
/// tolerance, the oversized-line trip wire, partial-line carry-over —
/// are unit-testable without a connection.
class LineSplitter {
 public:
  explicit LineSplitter(size_t max_line_bytes)
      : max_line_bytes_(max_line_bytes) {}

  /// Appends raw bytes and moves every complete line (newline stripped,
  /// trailing CR stripped) into `out`. Returns false — permanently —
  /// once a line exceeds `max_line_bytes` before its newline arrives:
  /// framing is lost and the connection must be closed after an
  /// `err parse` response. Bounded: buffers at most `max_line_bytes`.
  bool Ingest(std::string_view bytes, std::vector<std::string>* out);

  /// Bytes of the current unterminated line.
  size_t buffered_bytes() const { return partial_.size(); }
  bool overflowed() const { return overflowed_; }

 private:
  size_t max_line_bytes_;
  std::string partial_;
  bool overflowed_ = false;
};

/// \brief One admitted request line, stamped with the observability
/// context it was admitted under: its admission timestamp (feeding the
/// admission-to-flush latency histogram), a server-wide request id,
/// and whether this request was picked by trace sampling.
struct PendingLine {
  std::string line;
  /// Steady-clock ns at admission (reactor thread).
  int64_t admit_ns = 0;
  /// Monotonic across the server's lifetime; labels trace output.
  uint64_t request_id = 0;
  /// True when `--trace-sample` selected this request for a per-stage
  /// timing trace.
  bool traced = false;
};

/// \brief One client connection of the serve reactor: owned socket,
/// line framing, the bounded queue of lines awaiting execution, and
/// the outgoing write buffer.
///
/// All state is touched only by the reactor thread; workers never see
/// a connection, only copies of its request lines keyed by `id`.
/// Deliberately unannotated: single-thread ownership is the invariant
/// here, not a lock — there is no mutex a GUARDED_BY could name, and
/// cross-thread handoff happens only via the server's annotated
/// work/completion queues (`ServeServer::work_mu_`/`completion_mu_`).
struct ServeConn {
  ServeConn(OwnedFd socket, uint64_t conn_id, size_t max_line_bytes)
      : fd(std::move(socket)), id(conn_id), splitter(max_line_bytes) {}

  OwnedFd fd;
  /// Monotonic across the server's lifetime (never a reused fd number),
  /// so a completion for a closed connection can never be misdelivered.
  uint64_t id = 0;

  LineSplitter splitter;
  /// Parsed-off request lines admitted but not yet handed to a worker.
  /// Bounded by the server's per-connection admission cap.
  std::deque<PendingLine> pending;
  /// Lines currently executing in a worker batch (0 = none). At most
  /// one batch per connection is in flight, which is what keeps
  /// responses in request order without any sequencing metadata.
  size_t inflight_lines = 0;

  /// Encoded response bytes not yet accepted by the socket.
  std::string write_buf;
  /// Prefix of `write_buf` already written (compacted on flush).
  size_t write_pos = 0;

  /// Reactor-loop timestamp of the last byte received (ms, steady
  /// clock); drives idle/slow-loris reaping.
  int64_t last_activity_ms = 0;
  /// Set when the connection must close once `write_buf` drains
  /// (oversized line, overload-close policy, drain).
  bool close_after_flush = false;
  /// Set when the peer half-closed (EOF read); pending work still
  /// completes and flushes, then the connection closes.
  bool peer_eof = false;
  /// True while registered for EPOLLOUT (write buffer non-empty).
  bool want_write = false;

  /// Read/write buffer bytes last folded into the server's aggregate
  /// buffer gauges (reactor-only bookkeeping; see SyncConnGauges).
  size_t obs_read_bytes = 0;
  size_t obs_write_bytes = 0;

  size_t unsent_bytes() const { return write_buf.size() - write_pos; }
  bool idle() const {
    return pending.empty() && inflight_lines == 0 && unsent_bytes() == 0;
  }

  /// Appends `line` + '\n' to the write buffer.
  void QueueResponse(std::string_view line) {
    write_buf.append(line);
    write_buf.push_back('\n');
  }

  /// Drops the already-written prefix so the buffer cannot grow
  /// without bound across partial writes.
  void CompactWriteBuffer() {
    if (write_pos > 0) {
      write_buf.erase(0, write_pos);
      write_pos = 0;
    }
  }
};

}  // namespace qikey

#endif  // QIKEY_SERVE_CONN_H_
