#ifndef QIKEY_SERVE_PROTOCOL_H_
#define QIKEY_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "data/schema.h"
#include "serve/request.h"
#include "util/status.h"

namespace qikey {

/// \brief The versioned serve-layer wire API, v1 (`QIKEY/1`).
///
/// This header is the ONE definition of the wire protocol: the request
/// parser and the response encoder here are shared by the batch
/// executor (`qikey query --requests`), the network server
/// (`qikey serve`), and the tests — there is no second copy to drift.
///
/// ## Framing
///
/// Newline-delimited text over TCP. On connect the server greets with a
/// hello line, then every client line is one request and produces
/// exactly one response line, in order:
///
///   server: QIKEY/1 ready
///   client: is-key zip,dob
///   server: ok accept
///   client: afd zip,dob -> name
///   server: ok 0.00123 0.0456 42
///   client: nonsense
///   server: err parse unknown request verb 'nonsense' ...
///
/// A client may send `QIKEY/1` as a line at any time to assert the
/// version; the server answers `ok v1` (an unsupported `QIKEY/<n>`
/// gets `err validation ...`).
///
/// ## Admin verbs
///
///   stats
///
/// Answered by the server itself (never the query engine) with one
/// `ok <json>` line: the server's full metrics snapshot as a single
/// line of JSON (`MetricsSnapshot::RenderJson` — sorted keys, integer
/// values), e.g.
///
///   client: stats
///   server: ok {"counters":{...},"gauges":{...},"histograms":{...}}
///
/// `stats` goes through normal admission (it is a request line like
/// any other, counted and shed the same way), so its cost under
/// overload is bounded. The batch executor (`qikey query --stats`)
/// reports through the same JSON schema.
///
/// ## Requests (grammar, tokens separated by spaces/tabs)
///
///   is-key     <attr>[,<attr>...]
///   separation <attr>[,<attr>...]
///   min-key
///   afd        <attr>[,<attr>...] -> <attr>
///   anonymity  <attr>[,<attr>...] [k]
///
/// Parsing is strict: unknown verbs, unknown or empty attribute names,
/// malformed integers, and trailing junk are errors — nothing is
/// silently coerced.
///
/// ## Responses (tagged lines)
///
///   ok <payload>            — per-kind payload, see EncodeResponseLine
///   err <code> <message>    — code from ServeErrorCode wire names
///
/// Payload encodings (v1; floats use "%.9g"):
///   is-key      ok accept | ok reject
///   separation  ok <ratio> key|gray|bad
///   min-key     ok none 0 | ok <attr>[,<attr>...] <num_minimal>
///   afd         ok <g2> <conditional> <violating>
///   anonymity   ok <level> <below_k_fraction>
///
/// ## Request files
///
/// One request per line; blank lines and `#` comments skipped. A file
/// may begin with a `QIKEY/<n>` hello line naming its protocol
/// version; files without one are treated as v1 (the pre-versioning
/// format), so old request files keep parsing unchanged.
enum class ProtocolVersion : uint32_t {
  kV1 = 1,
};

/// The newest version this build speaks.
inline constexpr ProtocolVersion kProtocolCurrent = ProtocolVersion::kV1;

/// The v1 hello / version-assertion line.
inline constexpr std::string_view kHelloV1 = "QIKEY/1";

/// The admin verb returning the server's metrics snapshot.
inline constexpr std::string_view kStatsVerb = "stats";

/// True if `line` looks like a protocol hello (`QIKEY/<digits>`),
/// whether or not the version is one we support.
bool IsHelloLine(std::string_view line);

/// Parses `QIKEY/<n>`. InvalidArgument for malformed hellos or
/// versions this build does not speak.
Result<ProtocolVersion> ParseHelloLine(std::string_view line);

/// The server's greeting for `version`, without the newline
/// ("QIKEY/1 ready").
std::string FormatHelloLine(ProtocolVersion version);

/// Stable wire name of an error code ("parse", "validation",
/// "overload", "unavailable", "internal"). `kNone` has no wire name
/// (ok lines carry no code) and renders as "none" for diagnostics.
const char* ServeErrorCodeName(ServeErrorCode code);

/// Maps a non-OK `Status` from the serve boundary to its taxonomy
/// bucket: InvalidArgument/OutOfRange -> validation, NotFound ->
/// unavailable, everything else -> internal. (Parse and overload
/// errors are tagged at their source, not inferred from a status.)
ServeErrorCode ServeErrorCodeFromStatus(const Status& status);

/// \brief Parses one request line. Strict — see the grammar above.
/// The failed status's taxonomy bucket is `kParse` for grammar errors
/// and unknown attributes alike (the line, not the snapshot, is wrong).
Result<QueryRequest> ParseQueryRequest(std::string_view line,
                                       const Schema& schema);

/// Parses a whole request file body: one request per line, blank lines
/// and `#` comments skipped. A leading `QIKEY/<n>` hello line selects
/// the protocol version (and is not a request); absent, the body is
/// treated as v1. Errors name the offending 1-based line.
Result<std::vector<QueryRequest>> ParseQueryRequests(std::string_view text,
                                                     const Schema& schema);

/// Reads `path` and parses it with `ParseQueryRequests`.
Result<std::vector<QueryRequest>> LoadQueryRequestFile(
    const std::string& path, const Schema& schema);

/// \brief Encodes one response as its v1 wire line (no trailing
/// newline): `ok <payload>` on success, `err <code> <message>`
/// otherwise. Deterministic: two equal responses encode to the same
/// bytes, so server output can be diffed against the batch executor.
/// `cache_hit` and `epoch` are latency/bookkeeping metadata and are
/// deliberately NOT part of the wire payload.
std::string EncodeResponseLine(const QueryRequest& request,
                               const QueryResponse& response,
                               const Schema& schema);

/// An `err <code> <message>` line (no trailing newline) for failures
/// that never produced a response — admission-control sheds, oversized
/// lines, unsupported versions. Newlines in `message` are flattened to
/// spaces (the message must not break framing).
std::string EncodeErrorLine(ServeErrorCode code, std::string_view message);

}  // namespace qikey

#endif  // QIKEY_SERVE_PROTOCOL_H_
