#include "serve/request.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace qikey {

namespace {

/// Splits on runs of spaces/tabs (the request grammar's separator).
std::vector<std::string_view> SplitTokens(std::string_view line) {
  std::vector<std::string_view> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    size_t begin = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > begin) tokens.push_back(line.substr(begin, i - begin));
  }
  return tokens;
}

/// Resolves "a,b,c" strictly: every name must be non-empty and in the
/// schema (so `a,,b` and typos fail instead of shrinking the set).
Result<AttributeSet> ResolveAttrList(std::string_view spec,
                                     const Schema& schema) {
  AttributeSet out(schema.num_attributes());
  size_t pos = 0;
  while (true) {
    size_t comma = spec.find(',', pos);
    std::string_view name = spec.substr(
        pos, comma == std::string_view::npos ? std::string_view::npos
                                             : comma - pos);
    if (name.empty()) {
      return Status::InvalidArgument("empty attribute name in '" +
                                     std::string(spec) + "'");
    }
    int idx = schema.Find(std::string(name));
    if (idx < 0) {
      return Status::InvalidArgument("unknown attribute: " +
                                     std::string(name));
    }
    out.Add(static_cast<AttributeIndex>(idx));
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  return out;
}

/// Strict non-negative integer: the whole token must be digits.
bool ParseStrictUint(std::string_view token, uint64_t* out) {
  if (token.empty()) return false;
  std::string buf(token);
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size() || errno == ERANGE ||
      buf[0] == '-' || buf[0] == '+') {
    return false;
  }
  *out = static_cast<uint64_t>(v);
  return true;
}

}  // namespace

Result<QueryRequest> ParseQueryRequest(std::string_view line,
                                       const Schema& schema) {
  std::vector<std::string_view> tokens = SplitTokens(line);
  if (tokens.empty()) {
    return Status::InvalidArgument("empty request");
  }
  std::string_view verb = tokens[0];
  QueryRequest request;
  if (verb == "min-key") {
    if (tokens.size() != 1) {
      return Status::InvalidArgument("min-key takes no arguments");
    }
    request.kind = QueryKind::kMinKey;
    request.attrs = AttributeSet(schema.num_attributes());
    return request;
  }
  if (verb == "is-key" || verb == "separation") {
    if (tokens.size() != 2) {
      return Status::InvalidArgument(std::string(verb) +
                                     " wants exactly one attribute list");
    }
    Result<AttributeSet> attrs = ResolveAttrList(tokens[1], schema);
    if (!attrs.ok()) return attrs.status();
    request.kind =
        verb == "is-key" ? QueryKind::kIsKey : QueryKind::kSeparation;
    request.attrs = std::move(*attrs);
    return request;
  }
  if (verb == "afd") {
    if (tokens.size() != 4 || tokens[2] != "->") {
      return Status::InvalidArgument("afd wants: afd <lhs,...> -> <rhs>");
    }
    Result<AttributeSet> lhs = ResolveAttrList(tokens[1], schema);
    if (!lhs.ok()) return lhs.status();
    int rhs = schema.Find(std::string(tokens[3]));
    if (rhs < 0) {
      return Status::InvalidArgument("unknown attribute: " +
                                     std::string(tokens[3]));
    }
    request.kind = QueryKind::kAfd;
    request.attrs = std::move(*lhs);
    request.rhs = static_cast<AttributeIndex>(rhs);
    return request;
  }
  if (verb == "anonymity") {
    if (tokens.size() != 2 && tokens.size() != 3) {
      return Status::InvalidArgument(
          "anonymity wants: anonymity <attrs,...> [k]");
    }
    Result<AttributeSet> attrs = ResolveAttrList(tokens[1], schema);
    if (!attrs.ok()) return attrs.status();
    request.kind = QueryKind::kAnonymity;
    request.attrs = std::move(*attrs);
    if (tokens.size() == 3) {
      uint64_t k = 0;
      if (!ParseStrictUint(tokens[2], &k) || k == 0) {
        return Status::InvalidArgument("anonymity k must be a positive "
                                       "integer, got '" +
                                       std::string(tokens[2]) + "'");
      }
      request.k = k;
    }
    return request;
  }
  return Status::InvalidArgument(
      "unknown request verb '" + std::string(verb) +
      "' (want is-key|separation|min-key|afd|anonymity)");
}

Result<std::vector<QueryRequest>> ParseQueryRequests(std::string_view text,
                                                     const Schema& schema) {
  std::vector<QueryRequest> requests;
  size_t line_number = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    // Skip blanks and comments; everything else must parse.
    size_t first = line.find_first_not_of(" \t");
    if (first != std::string_view::npos && line[first] != '#') {
      Result<QueryRequest> request = ParseQueryRequest(line, schema);
      if (!request.ok()) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_number) + ": " +
            request.status().message());
      }
      requests.push_back(std::move(*request));
    }
    if (eol == std::string_view::npos) break;
    pos = eol + 1;
  }
  return requests;
}

Result<std::vector<QueryRequest>> LoadQueryRequestFile(
    const std::string& path, const Schema& schema) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path);
  }
  std::string text;
  char buf[1 << 16];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, got);
  }
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Status::IOError("cannot read " + path);
  return ParseQueryRequests(text, schema);
}

std::string FormatQueryResponse(const QueryRequest& request,
                                const QueryResponse& response,
                                const Schema* schema) {
  char buf[160];
  std::string out;
  switch (request.kind) {
    case QueryKind::kIsKey:
      out = "is-key " + request.attrs.ToString(schema);
      break;
    case QueryKind::kSeparation:
      out = "separation " + request.attrs.ToString(schema);
      break;
    case QueryKind::kMinKey:
      out = "min-key";
      break;
    case QueryKind::kAfd: {
      std::string rhs = "a";
      rhs += std::to_string(request.rhs);
      if (schema != nullptr) rhs = schema->name(request.rhs);
      out = "afd " + request.attrs.ToString(schema) + " -> " + rhs;
      break;
    }
    case QueryKind::kAnonymity:
      out = "anonymity " + request.attrs.ToString(schema);
      break;
  }
  out += ": ";
  if (!response.status.ok()) {
    out += "error: " + response.status.ToString();
    return out;
  }
  switch (request.kind) {
    case QueryKind::kIsKey:
      out += response.verdict == FilterVerdict::kAccept ? "ACCEPT" : "REJECT";
      if (response.cache_hit) out += " (cached)";
      break;
    case QueryKind::kSeparation: {
      const char* cls =
          response.separation_class == SeparationClass::kKey ? "key"
          : response.separation_class == SeparationClass::kBad
              ? "bad"
              : "gray zone";
      std::snprintf(buf, sizeof(buf), "%.6f (%s)",
                    response.separation_ratio, cls);
      out += buf;
      break;
    }
    case QueryKind::kMinKey:
      if (response.has_key) {
        std::snprintf(buf, sizeof(buf), " (1 of %zu minimal)",
                      response.num_minimal_keys);
        out += response.key.ToString(schema) + buf;
      } else {
        out += "(none tracked)";
      }
      break;
    case QueryKind::kAfd:
      std::snprintf(buf, sizeof(buf),
                    "g2=%.6f conditional=%.6f violating=%llu",
                    response.afd.g2, response.afd.conditional,
                    static_cast<unsigned long long>(response.afd.violating));
      out += buf;
      break;
    case QueryKind::kAnonymity:
      std::snprintf(buf, sizeof(buf),
                    "level %llu, %.2f%% of rows below k=%llu",
                    static_cast<unsigned long long>(response.anonymity_level),
                    100.0 * response.below_k_fraction,
                    static_cast<unsigned long long>(request.k));
      out += buf;
      break;
  }
  return out;
}

}  // namespace qikey
