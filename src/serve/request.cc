#include "serve/request.h"

#include <cstdio>
#include <string>

#include "serve/protocol.h"

namespace qikey {

// Request parsing and the wire codec live in serve/protocol.cc; this
// file only renders the human-readable report form used by the CLI.

std::string FormatQueryResponse(const QueryRequest& request,
                                const QueryResponse& response,
                                const Schema* schema) {
  char buf[160];
  std::string out;
  switch (request.kind) {
    case QueryKind::kIsKey:
      out = "is-key " + request.attrs.ToString(schema);
      break;
    case QueryKind::kSeparation:
      out = "separation " + request.attrs.ToString(schema);
      break;
    case QueryKind::kMinKey:
      out = "min-key";
      break;
    case QueryKind::kAfd: {
      std::string rhs = "a";
      rhs += std::to_string(request.rhs);
      if (schema != nullptr) rhs = schema->name(request.rhs);
      out = "afd " + request.attrs.ToString(schema) + " -> " + rhs;
      break;
    }
    case QueryKind::kAnonymity:
      out = "anonymity " + request.attrs.ToString(schema);
      break;
  }
  out += ": ";
  if (!response.status.ok()) {
    ServeErrorCode code = response.error_code != ServeErrorCode::kNone
                              ? response.error_code
                              : ServeErrorCodeFromStatus(response.status);
    out += "error[";
    out += ServeErrorCodeName(code);
    out += "]: " + response.status.ToString();
    return out;
  }
  switch (request.kind) {
    case QueryKind::kIsKey:
      out += response.verdict == FilterVerdict::kAccept ? "ACCEPT" : "REJECT";
      if (response.cache_hit) out += " (cached)";
      break;
    case QueryKind::kSeparation: {
      const char* cls =
          response.separation_class == SeparationClass::kKey ? "key"
          : response.separation_class == SeparationClass::kBad
              ? "bad"
              : "gray zone";
      std::snprintf(buf, sizeof(buf), "%.6f (%s)",
                    response.separation_ratio, cls);
      out += buf;
      break;
    }
    case QueryKind::kMinKey:
      if (response.has_key) {
        std::snprintf(buf, sizeof(buf), " (1 of %zu minimal)",
                      response.num_minimal_keys);
        out += response.key.ToString(schema) + buf;
      } else {
        out += "(none tracked)";
      }
      break;
    case QueryKind::kAfd:
      std::snprintf(buf, sizeof(buf),
                    "g2=%.6f conditional=%.6f violating=%llu",
                    response.afd.g2, response.afd.conditional,
                    static_cast<unsigned long long>(response.afd.violating));
      out += buf;
      break;
    case QueryKind::kAnonymity:
      std::snprintf(buf, sizeof(buf),
                    "level %llu, %.2f%% of rows below k=%llu",
                    static_cast<unsigned long long>(response.anonymity_level),
                    100.0 * response.below_k_fraction,
                    static_cast<unsigned long long>(request.k));
      out += buf;
      break;
  }
  return out;
}

}  // namespace qikey
