#include "serve/query_engine.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <thread>
#include <unordered_map>
#include <utility>

#include "core/anonymity.h"
#include "core/separation.h"
#include "util/mutex.h"

namespace qikey {

namespace {

size_t ResolveThreads(size_t num_threads) {
  if (num_threads > 0) return num_threads;
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

QueryEngine::QueryEngine(const SnapshotStore* store,
                         const QueryEngineOptions& options)
    : store_(store),
      options_(options),
      cache_(VerdictCacheOptions{options.cache_capacity,
                                 options.cache_shards}) {
  size_t threads = ResolveThreads(options_.num_threads);
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
}

Status QueryEngine::ValidateRequest(const ServeSnapshot& snapshot,
                                    const QueryRequest& request) {
  size_t m = snapshot.schema().num_attributes();
  if (request.kind == QueryKind::kMinKey) return Status::OK();
  if (request.attrs.universe_size() != m) {
    return Status::InvalidArgument(
        "request attribute universe does not match the snapshot schema");
  }
  if (request.kind == QueryKind::kAfd) {
    if (request.rhs >= m) {
      return Status::InvalidArgument("afd rhs out of range");
    }
    if (request.attrs.Contains(request.rhs)) {
      return Status::InvalidArgument("afd rhs must not be part of the lhs");
    }
  }
  if (request.kind == QueryKind::kAnonymity && request.k == 0) {
    return Status::InvalidArgument("anonymity k must be >= 1");
  }
  return Status::OK();
}

void QueryEngine::AnswerOnSample(const ServeSnapshot& snapshot,
                                 const QueryRequest& request,
                                 QueryResponse* response) {
  const Dataset& sample = *snapshot.sample;
  switch (request.kind) {
    case QueryKind::kIsKey:
      break;  // answered by the filter batch, not here
    case QueryKind::kSeparation:
      response->separation_ratio = SeparationRatio(sample, request.attrs);
      response->separation_class =
          Classify(sample, request.attrs, snapshot.eps);
      break;
    case QueryKind::kMinKey:
      response->num_minimal_keys = snapshot.keys->size();
      response->has_key = !snapshot.keys->empty();
      if (response->has_key) response->key = snapshot.keys->front();
      break;
    case QueryKind::kAfd:
      response->afd = ComputeAfdError(sample, request.attrs, request.rhs);
      break;
    case QueryKind::kAnonymity:
      response->anonymity_level = AnonymityLevel(sample, request.attrs);
      response->below_k_fraction =
          RowsBelowK(sample, request.attrs, request.k);
      break;
  }
}

QueryResponse QueryEngine::Execute(const QueryRequest& request) const {
  QueryRequest copy[1] = {request};
  return ExecuteBatch(std::span<const QueryRequest>(copy, 1)).front();
}

void QueryEngine::RegisterMetrics(MetricsRegistry* registry) const {
  registry->RegisterCounter("engine.requests", &requests_);
  registry->RegisterCounter("engine.batches", &batches_);
  registry->RegisterHistogram("engine.batch_size", &batch_size_);
  registry->RegisterHistogram("engine.pass.validate_ns", &validate_ns_);
  registry->RegisterHistogram("engine.pass.dedupe_ns", &dedupe_ns_);
  registry->RegisterHistogram("engine.pass.execute_ns", &execute_ns_);
  registry->RegisterCounterFn("cache.hits", [this] { return cache_.hits(); });
  registry->RegisterCounterFn("cache.misses",
                              [this] { return cache_.misses(); });
  registry->RegisterCounterFn("cache.evictions",
                              [this] { return cache_.evictions(); });
  registry->RegisterGaugeFn("cache.size", [this] {
    return static_cast<int64_t>(cache_.size());
  });
  const SnapshotStore* store = store_;
  registry->RegisterGaugeFn("snapshot.epoch", [store] {
    return static_cast<int64_t>(store->epoch());
  });
  // Publishes THIS process performed — not the epoch, which survives
  // snapshot-file restores and would misreport work done by a previous
  // incarnation.
  registry->RegisterCounterFn("snapshot.publishes",
                              [store] { return store->publishes(); });
  registry->RegisterGaugeFn("snapshot.age_ns", [store] {
    int64_t published = store->last_publish_steady_ns();
    return published == 0 ? int64_t{0} : NowNs() - published;
  });
  if (pool_ != nullptr) {
    pool_->AttachMetrics(&pool_queue_depth_, &pool_task_ns_);
    registry->RegisterGauge("pool.queue_depth", &pool_queue_depth_);
    registry->RegisterHistogram("pool.task_ns", &pool_task_ns_);
  }
}

std::vector<QueryResponse> QueryEngine::ExecuteBatch(
    std::span<const QueryRequest> requests) const {
  batches_.Increment();
  requests_.Increment(requests.size());
  batch_size_.Record(static_cast<int64_t>(requests.size()));
  std::vector<QueryResponse> responses(requests.size());
  std::shared_ptr<const ServeSnapshot> snapshot = store_->Current();
  if (snapshot == nullptr) {
    for (QueryResponse& response : responses) {
      response.status = Status::NotFound("no snapshot published yet");
      response.error_code = ServeErrorCode::kSnapshotUnavailable;
    }
    return responses;
  }

  // Pass 1 (parallel): validate, stamp the pinned epoch, answer the
  // sample-evaluated kinds, and resolve is-key requests against the
  // sharded cache — only cache MISSES survive to the filter pass, and
  // an all-hits batch never leaves this sweep (which is why cached
  // throughput scales with threads). Each chunk writes disjoint
  // response slots and every answer is a pure function of
  // (snapshot, request), so the split cannot change results.
  int64_t pass_start = NowNs();
  // A miss is an is-key request the cache could not answer. Chunks
  // collect them in PER-WORKER scratch and merge once under a mutex —
  // no per-request shared byte array for worker threads to false-share
  // — tagged with the hash shard the dedupe pass will route them to.
  constexpr size_t kDedupeShards = 16;
  struct Miss {
    uint32_t index;  ///< Request position.
    uint32_t shard;  ///< Hash shard of the request's attribute set.
  };
  struct MissChunk {
    size_t begin;
    std::vector<Miss> misses;
  };
  Mutex miss_mu;
  std::vector<MissChunk> miss_chunks;
  ThreadPool::ParallelFor(
      pool_.get(), requests.size(),
      [&](size_t begin, size_t end) {
        std::vector<Miss> local;
        for (size_t i = begin; i < end; ++i) {
          responses[i].epoch = snapshot->epoch;
          responses[i].status = ValidateRequest(*snapshot, requests[i]);
          if (!responses[i].status.ok()) {
            responses[i].error_code = ServeErrorCode::kValidation;
            continue;
          }
          if (requests[i].kind == QueryKind::kIsKey) {
            FilterVerdict cached;
            if (cache_.Lookup(snapshot->epoch, requests[i].attrs, &cached)) {
              responses[i].verdict = cached;
              responses[i].cache_hit = true;
            } else {
              local.push_back(
                  Miss{static_cast<uint32_t>(i),
                       static_cast<uint32_t>(
                           AttributeSetHasher{}(requests[i].attrs) %
                           kDedupeShards)});
            }
          } else {
            AnswerOnSample(*snapshot, requests[i], &responses[i]);
          }
        }
        if (!local.empty()) {
          MutexLock lock(miss_mu);
          miss_chunks.emplace_back(begin, std::move(local));
        }
      },
      options_.min_batch_grain);

  // Chunks finish in arbitrary order; sorting by chunk origin restores
  // request order, so everything downstream — slot assignment, cache
  // insertion, the filter batch — is independent of the thread count.
  std::sort(miss_chunks.begin(), miss_chunks.end(),
            [](const MissChunk& a, const MissChunk& b) {
              return a.begin < b.begin;
            });
  std::vector<Miss> misses;
  for (MissChunk& chunk : miss_chunks) {
    misses.insert(misses.end(), chunk.misses.begin(), chunk.misses.end());
  }

  int64_t pass_end = NowNs();
  validate_ns_.Record(pass_end - pass_start);
  pass_start = pass_end;

  // Pass 2 (sharded): dedupe the missed is-key sets — duplicates
  // within the batch share one filter slot. Sharding is by attribute-
  // set hash, NOT by thread, so the shard contents (and thus the slot
  // numbering below) are a pure function of the request sequence.
  struct ShardDedupe {
    std::vector<uint32_t> unique_miss;  ///< First-occurrence miss positions.
    std::vector<std::pair<uint32_t, uint32_t>> assign;  ///< (miss, local slot)
  };
  std::array<ShardDedupe, kDedupeShards> dedupe_shards;
  ThreadPool::ParallelFor(
      pool_.get(), kDedupeShards, [&](size_t begin, size_t end) {
        for (size_t s = begin; s < end; ++s) {
          ShardDedupe& shard = dedupe_shards[s];
          std::unordered_map<AttributeSet, uint32_t, AttributeSetHasher>
              slot_of;
          for (size_t p = 0; p < misses.size(); ++p) {
            if (misses[p].shard != s) continue;
            auto [it, inserted] = slot_of.try_emplace(
                requests[misses[p].index].attrs,
                static_cast<uint32_t>(shard.unique_miss.size()));
            if (inserted) {
              shard.unique_miss.push_back(static_cast<uint32_t>(p));
            }
            shard.assign.emplace_back(static_cast<uint32_t>(p), it->second);
          }
        }
      });

  // Serial stitch: shard-local slots become global filter slots.
  std::vector<std::pair<size_t, size_t>> filter_slots;  // (request, slot)
  std::vector<AttributeSet> filter_attrs;
  filter_slots.reserve(misses.size());
  size_t shard_base = 0;
  for (const ShardDedupe& shard : dedupe_shards) {
    for (uint32_t p : shard.unique_miss) {
      filter_attrs.push_back(requests[misses[p].index].attrs);
    }
    for (const auto& [p, local_slot] : shard.assign) {
      filter_slots.emplace_back(misses[p].index, shard_base + local_slot);
    }
    shard_base += shard.unique_miss.size();
  }
  pass_end = NowNs();
  dedupe_ns_.Record(pass_end - pass_start);
  pass_start = pass_end;

  // Pass 3: one batched filter query for all misses (the pipeline's
  // own batched path — on the bitset backend this is the block
  // kernel), then populate the cache.
  if (!filter_attrs.empty()) {
    std::vector<FilterVerdict> verdicts =
        snapshot->filter->QueryBatch(filter_attrs, pool_.get());
    for (size_t j = 0; j < filter_attrs.size(); ++j) {
      cache_.Insert(snapshot->epoch, filter_attrs[j], verdicts[j]);
    }
    for (const auto& [request_index, slot] : filter_slots) {
      responses[request_index].verdict = verdicts[slot];
    }
  }
  execute_ns_.Record(NowNs() - pass_start);
  return responses;
}

}  // namespace qikey
