// qikey — command-line front end for the library.
//
// Usage:
//   qikey profile <csv>
//       Per-column statistics (distinct counts, entropy, separation).
//   qikey minkey <csv> [--eps E]
//       Approximate minimum eps-separation key (Proposition 1).
//   qikey keys <csv> [--eps E] [--max-size K]
//       All minimal eps-keys (UCC enumeration) up to size K.
//   qikey audit <csv> [--eps E] [--max-size K]
//       Quasi-identifier risk report (k-anonymity, uniqueness).
//   qikey query <csv> --attrs a,b,c [--eps E]
//       eps-separation key filter verdict + exact ground truth.
//   qikey query <csv> --requests file.txt [--threads N] [--cache C]
//                [--eps E] [--backend tuple|mx|bitset] [--wire]
//                [--stats]
//       Batch serve executor: run discovery once, publish the result as
//       an immutable snapshot, and answer every request in the file
//       concurrently through the serve-layer QueryEngine (sharded LRU
//       verdict cache of C entries; 0 disables). Request grammar (one
//       per line; '#' comments): is-key a,b | separation a,b | min-key
//       | afd a,b -> c | anonymity a,b [k]. With --wire, print exactly
//       one QIKEY/1 wire line per request (the same encoder the network
//       server uses) and nothing else — byte-diffable against a served
//       session. With --stats, one final line with the engine metrics
//       snapshot as JSON (same schema as the server's `stats` verb).
//   qikey serve <csv-or-artifacts> [--listen H:P]
//               [--snapshot-from run|monitor|artifacts]
//               [--snapshot-file FILE]
//               [--max-conns N] [--queue-depth N] [--idle-timeout MS]
//               [--eps E] [--backend B] [--threads T] [--cache C]
//               [--seed S] [--max-size K] [--window W]
//               [--stats-interval-sec N] [--trace-sample N] [--log-json]
//       Long-running network server speaking the newline-delimited
//       QIKEY/1 protocol (see src/serve/protocol.h). Builds one serving
//       snapshot from the positional input (--snapshot-from artifacts
//       treats it as a comma-separated shard-artifact list), publishes
//       it, prints "listening on <host>:<port>" (port 0 binds an
//       ephemeral port), and serves until SIGTERM/SIGINT (graceful
//       drain). SIGHUP rebuilds the snapshot from the same source and
//       hot-swaps it without dropping connections. With
//       --snapshot-file FILE (instead of a positional input) the
//       snapshot is mapped from a QSNP1 artifact written by `snapshot
//       save` — serving starts without re-running discovery, and SIGHUP
//       re-reads the file. SIGUSR1 (or
//       --stats-interval-sec N, periodically) dumps one JSON stats
//       line to stderr; --trace-sample N (also accepted as "1/N")
//       emits a per-stage timing trace for every Nth request;
//       --log-json switches log output to JSON lines.
//   qikey snapshot save <csv-or-artifacts> --out FILE
//                 [--snapshot-from run|monitor|artifacts] [--eps E]
//                 [--backend B] [--threads T] [--seed S] [--max-size K]
//                 [--window W]
//       Build one serving snapshot (same sources as `serve`) and freeze
//       it into a QSNP1 snapshot artifact at FILE — a checksummed,
//       64-byte-aligned image that `serve --snapshot-file` maps and
//       serves zero-copy (see docs/architecture.md).
//   qikey snapshot inspect <file>
//       Validate FILE's header, section table, and checksums, and print
//       them as one sorted-key JSON object. Exit 2 if malformed.
//   qikey mask <csv> [--eps E]
//       Attributes to suppress so no quasi-identifier remains.
//   qikey afd <csv> --rhs col [--error E] [--max-size K]
//       Minimal approximate functional dependencies X -> col.
//   qikey anonymize <csv> --attrs a,b [--k K] [--suppress F]
//       Minimal generalization making the table k-anonymous w.r.t. the
//       given quasi-identifier (interval hierarchies, branching 4).
//   qikey discover <csv> [--eps E] [--backend tuple|mx|bitset]
//                  [--threads T]
//                  [--shards N] [--memory-budget MB] [--shard-rows R]
//       End-to-end discovery pipeline: sample, filter, parallel greedy,
//       batched minimization, verify with witness; per-stage timings.
//       With --shards, per-shard filters are built in parallel over
//       record-aligned byte ranges of the file and merged; with
//       --memory-budget, the file is single-passed in bounded chunks
//       and never loaded whole (out-of-core mode).
//   qikey monitor <csv> [--eps E] [--max-size K] [--window W]
//                 [--backend tuple|mx|bitset] [--threads T]
//       Replay the CSV as a live insert stream through the incremental
//       key monitor (optionally as a sliding window of W rows), report
//       every key-churn event and the final snapshot.
//
// All commands are deterministic for a fixed --seed (default 1),
// including discover and monitor at any --threads value.
//
// Exit codes: 0 success; 1 load/runtime error; 2 usage error;
// 3 discover verification failure (the emitted key was rejected by the
// filter), so scripts and CI can gate on it.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "qikey.h"

#include "util/flag_parse.h"

#include "core/afd.h"
#include "core/anonymity.h"
#include "core/generalization.h"
#include "core/key_enumeration.h"
#include "core/masking.h"
#include "data/hierarchy.h"
#include "data/wire_codec.h"
#include "data/statistics.h"
#include "engine/pipeline.h"
#include "serve/protocol.h"
#include "serve/query_engine.h"
#include "serve/request.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "snapfile/snapfile.h"
#include "obs/metrics.h"
#include "util/logging.h"
#include "util/shutdown.h"

namespace qikey {
namespace {

struct Args {
  std::string command;
  std::string sub;  // `snapshot` subcommand: save | inspect
  std::string csv_path;
  double eps = 0.001;
  uint32_t max_size = 4;
  double afd_error = 0.05;
  std::string rhs;
  std::string attrs;
  uint64_t seed = 1;
  uint64_t k = 5;
  double suppress = 0.0;
  std::string backend = "tuple";
  size_t threads = 1;
  uint64_t window = 0;
  size_t shards = 0;
  double memory_budget_mb = 0.0;
  size_t shard_rows = 0;
  std::string requests;
  size_t cache = 4096;
  bool wire = false;
  std::string listen = "127.0.0.1:7421";
  std::string snapshot_from = "run";
  size_t max_conns = 1024;
  size_t queue_depth = 256;
  long long idle_timeout_ms = 60 * 1000;
  std::string out;
  std::string snapshot_file;
  bool stats = false;
  long long stats_interval_sec = 0;
  uint64_t trace_sample = 0;
  bool log_json = false;
};

void Usage() {
  std::fprintf(stderr,
               "usage: qikey <profile|minkey|keys|audit|query|mask|afd|"
               "anonymize|discover|monitor|serve|snapshot>\n"
               "             <csv> [--eps E] [--max-size K] [--attrs a,b,c] "
               "[--rhs col]\n"
               "             [--error E] [--seed S] [--backend "
               "tuple|mx|bitset] [--threads T]\n"
               "             [--window W] [--shards N] [--memory-budget MB] "
               "[--shard-rows R]\n"
               "             [--requests FILE] [--cache N] [--wire]\n"
               "             [--listen H:P] [--snapshot-from "
               "run|monitor|artifacts]\n"
               "             [--max-conns N] [--queue-depth N] "
               "[--idle-timeout MS]\n"
               "             [--stats] [--stats-interval-sec N] "
               "[--trace-sample N] [--log-json]\n"
               "       qikey snapshot save <input> --out FILE\n"
               "       qikey snapshot inspect <file>\n"
               "       qikey serve --snapshot-file FILE [flags]\n");
}


/// Parses the command line. Unknown flags and flags missing their value
/// print what went wrong (the caller points at Usage and exits 2) —
/// nothing is silently ignored.
bool ParseArgs(int argc, char** argv, Args* args) {
  if (argc < 2) return false;
  args->command = argv[1];
  int flag_start = 3;
  if (args->command == "snapshot") {
    // qikey snapshot <save|inspect> <input> [flags]
    if (argc < 4) return false;
    args->sub = argv[2];
    if (args->sub != "save" && args->sub != "inspect") {
      std::fprintf(stderr, "snapshot wants save|inspect, got %s\n",
                   args->sub.c_str());
      return false;
    }
    args->csv_path = argv[3];
    flag_start = 4;
  } else if (args->command == "serve" && argc >= 3 && argv[2][0] == '-') {
    // `serve --snapshot-file FILE` has no positional input; let the
    // flag loop start right at argv[2].
    flag_start = 2;
  } else {
    if (argc < 3) return false;
    args->csv_path = argv[2];
  }
  for (int i = flag_start; i < argc; ++i) {
    std::string flag = argv[i];
    // Consumes the flag's value; diagnoses a flag at the end of the
    // line or directly followed by another flag.
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag %s is missing its value\n", flag.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    auto next_count = [&](size_t* out) -> bool {
      const char* v = next();
      if (!v) return false;
      char* end = nullptr;
      long long t = std::strtoll(v, &end, 10);
      if (end == v || *end != '\0' || t < 0 || t > 1 << 22) {
        std::fprintf(stderr, "%s must be an integer in [0, %u], got %s\n",
                     flag.c_str(), 1u << 22, v);
        return false;
      }
      *out = static_cast<size_t>(t);
      return true;
    };
    long long n = 0;
    if (flag == "--eps") {
      const char* v = next();
      // `keys` runs exact UCC enumeration, which admits eps = 0; every
      // other command feeds eps into a Θ(m/ε) or Θ(m/√ε) size and must
      // reject it here (exit 2) before any sample size is computed.
      bool zero_ok = args->command == "keys";
      if (!v || !ParseDoubleFlag(flag, v, 0.0, 1.0, !zero_ok, true,
                                 zero_ok ? "[0, 1)" : "(0, 1)",
                                 &args->eps)) {
        return false;
      }
    } else if (flag == "--max-size") {
      const char* v = next();
      if (!v || !ParseIntFlag(flag, v, 1, 1 << 20, &n)) return false;
      args->max_size = static_cast<uint32_t>(n);
    } else if (flag == "--error") {
      const char* v = next();
      if (!v || !ParseDoubleFlag(flag, v, 0.0, 1.0, false, false, "[0, 1]",
                                 &args->afd_error)) {
        return false;
      }
    } else if (flag == "--rhs") {
      const char* v = next();
      if (!v) return false;
      args->rhs = v;
    } else if (flag == "--attrs") {
      const char* v = next();
      if (!v) return false;
      args->attrs = v;
    } else if (flag == "--seed") {
      const char* v = next();
      if (!v || !ParseUint64Flag(flag, v, &args->seed)) return false;
    } else if (flag == "--k") {
      const char* v = next();
      if (!v || !ParseIntFlag(flag, v, 1, 1ll << 40, &n)) return false;
      args->k = static_cast<uint64_t>(n);
    } else if (flag == "--suppress") {
      const char* v = next();
      if (!v || !ParseDoubleFlag(flag, v, 0.0, 1.0, false, false, "[0, 1]",
                                 &args->suppress)) {
        return false;
      }
    } else if (flag == "--backend") {
      const char* v = next();
      if (!v) return false;
      args->backend = v;
    } else if (flag == "--threads") {
      const char* v = next();
      if (!v || !ParseIntFlag(flag, v, 0, 4096, &n)) return false;
      args->threads = static_cast<size_t>(n);
    } else if (flag == "--window") {
      const char* v = next();
      if (!v || !ParseIntFlag(flag, v, 0, 1ll << 40, &n)) return false;
      args->window = static_cast<uint64_t>(n);
    } else if (flag == "--shards") {
      if (!next_count(&args->shards)) return false;
    } else if (flag == "--shard-rows") {
      if (!next_count(&args->shard_rows)) return false;
    } else if (flag == "--memory-budget") {
      const char* v = next();
      if (!v || !ParseDoubleFlag(flag, v, 0.0, 1e12, false, false,
                                 "[0, 1e12] megabytes",
                                 &args->memory_budget_mb)) {
        return false;
      }
    } else if (flag == "--requests") {
      const char* v = next();
      if (!v) return false;
      args->requests = v;
    } else if (flag == "--cache") {
      if (!next_count(&args->cache)) return false;
    } else if (flag == "--wire") {
      args->wire = true;  // boolean flag: takes no value
    } else if (flag == "--listen") {
      const char* v = next();
      if (!v) return false;
      args->listen = v;
    } else if (flag == "--snapshot-from") {
      const char* v = next();
      if (!v) return false;
      if (std::strcmp(v, "run") != 0 && std::strcmp(v, "monitor") != 0 &&
          std::strcmp(v, "artifacts") != 0) {
        std::fprintf(stderr,
                     "--snapshot-from must be run|monitor|artifacts, got %s\n",
                     v);
        return false;
      }
      args->snapshot_from = v;
    } else if (flag == "--max-conns") {
      if (!next_count(&args->max_conns)) return false;
    } else if (flag == "--queue-depth") {
      if (!next_count(&args->queue_depth)) return false;
    } else if (flag == "--idle-timeout") {
      const char* v = next();
      if (!v || !ParseIntFlag(flag, v, 0, 1ll << 31, &n)) return false;
      args->idle_timeout_ms = n;
    } else if (flag == "--stats") {
      args->stats = true;  // boolean flag: takes no value
    } else if (flag == "--stats-interval-sec") {
      const char* v = next();
      if (!v || !ParseIntFlag(flag, v, 0, 1ll << 31, &n)) return false;
      args->stats_interval_sec = n;
    } else if (flag == "--trace-sample") {
      // Sample rate: every Nth request (0 disables). "1/N" is accepted
      // as an alias for N, matching the "sample 1 in N" reading.
      const char* v = next();
      if (!v) return false;
      const char* rate = (v[0] == '1' && v[1] == '/') ? v + 2 : v;
      if (!ParseUint64Flag(flag, rate, &args->trace_sample)) return false;
    } else if (flag == "--out") {
      const char* v = next();
      if (!v) return false;
      args->out = v;
    } else if (flag == "--snapshot-file") {
      const char* v = next();
      if (!v) return false;
      args->snapshot_file = v;
    } else if (flag == "--log-json") {
      args->log_json = true;  // boolean flag: takes no value
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

/// Resolves --backend; false (with a message) on unknown names.
bool ParseBackend(const std::string& name, FilterBackend* backend) {
  if (name == "tuple") {
    *backend = FilterBackend::kTupleSample;
    return true;
  }
  if (name == "mx") {
    *backend = FilterBackend::kMxPair;
    return true;
  }
  if (name == "bitset") {
    *backend = FilterBackend::kBitset;
    return true;
  }
  std::fprintf(stderr, "unknown backend: %s (want tuple|mx|bitset)\n",
               name.c_str());
  return false;
}

/// Resolves "a,b,c" against the schema; exits on unknown names.
AttributeSet ResolveAttrs(const Dataset& data, const std::string& spec) {
  AttributeSet out(data.num_attributes());
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    std::string name = spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!name.empty()) {
      int idx = data.schema().Find(name);
      if (idx < 0) {
        std::fprintf(stderr, "unknown attribute: %s\n", name.c_str());
        std::exit(2);
      }
      out.Add(static_cast<AttributeIndex>(idx));
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

int RunProfile(const Dataset& data) {
  std::printf("%zu rows x %zu attributes, %llu pairs\n\n", data.num_rows(),
              data.num_attributes(),
              static_cast<unsigned long long>(data.num_pairs()));
  std::printf("%s", FormatProfileTable(ProfileDataset(data)).c_str());
  return 0;
}

int RunMinKey(const Dataset& data, const Args& args, Rng* rng) {
  MinKeyOptions opts;
  opts.eps = args.eps;
  auto result = FindApproxMinimumEpsKey(data, opts, rng);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("approximate minimum %g-separation key: %s\n", args.eps,
              result->key.ToString(&data.schema()).c_str());
  std::printf("  sample: %llu tuples; separates %.6f%% of all pairs\n",
              static_cast<unsigned long long>(result->sample_size),
              100.0 * SeparationRatio(data, result->key));
  if (!result->covered_sample) {
    std::printf("  note: sample contained exact duplicates; no attribute "
                "set is a key of it\n");
  }
  return 0;
}

int RunKeys(const Dataset& data, const Args& args) {
  KeyEnumerationOptions opts;
  opts.eps = args.eps;
  opts.max_size = args.max_size;
  auto keys = EnumerateMinimalKeys(data, opts);
  if (!keys.ok()) {
    std::fprintf(stderr, "%s\n", keys.status().ToString().c_str());
    return 1;
  }
  std::printf("minimal %g-separation keys up to size %u: %zu found\n",
              args.eps, args.max_size, keys->size());
  for (const AttributeSet& k : *keys) {
    std::printf("  %s\n", k.ToString(&data.schema()).c_str());
  }
  return 0;
}

int RunAudit(const Dataset& data, const Args& args, Rng* rng) {
  auto report = AuditQuasiIdentifiers(data, args.eps, args.max_size, rng);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", FormatRiskReport(*report, data.schema()).c_str());
  return 0;
}

/// Batch serve executor: discover once, freeze the result into a
/// `SnapshotStore`, then answer every request in `--requests` through a
/// `QueryEngine` — the offline harness for the serving layer (same
/// snapshot/engine/cache path a network front end would drive).
int RunServe(const Dataset& data, const Args& args, Rng* rng) {
  PipelineOptions opts;
  opts.eps = args.eps;
  opts.num_threads = args.threads;
  if (!ParseBackend(args.backend, &opts.backend)) return 2;
  DiscoveryPipeline pipeline(opts);
  Result<PipelineResult> result = pipeline.Run(data, rng);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  Result<ServeSnapshot> snapshot =
      SnapshotFromPipelineResult(*result, args.eps);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "%s\n", snapshot.status().ToString().c_str());
    return 1;
  }
  SnapshotStore store;
  Result<uint64_t> epoch = store.Publish(std::move(*snapshot));
  if (!epoch.ok()) {
    std::fprintf(stderr, "%s\n", epoch.status().ToString().c_str());
    return 1;
  }
  Result<std::vector<QueryRequest>> requests =
      LoadQueryRequestFile(args.requests, data.schema());
  if (!requests.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", args.requests.c_str(),
                 requests.status().ToString().c_str());
    return 1;
  }

  QueryEngineOptions engine_options;
  engine_options.num_threads = args.threads;
  engine_options.cache_capacity = args.cache;
  QueryEngine engine(&store, engine_options);
  // Registered before the batch runs so every pass timing and cache
  // touch lands in the snapshot printed at the end.
  MetricsRegistry registry;
  if (args.stats) engine.RegisterMetrics(&registry);
  std::vector<QueryResponse> responses = engine.ExecuteBatch(*requests);

  if (args.wire) {
    // Wire mode: exactly one QIKEY/1 line per request, nothing else —
    // the same encoder the network server runs, so this output is
    // byte-diffable against a served session (the bit-identical check
    // the serve tests and the smoke test rely on). --stats appends one
    // extra JSON line after the wire lines.
    for (size_t i = 0; i < requests->size(); ++i) {
      std::printf("%s\n",
                  EncodeResponseLine((*requests)[i], responses[i],
                                     data.schema()).c_str());
    }
    if (args.stats) std::printf("%s\n", registry.RenderJson().c_str());
    return 0;
  }

  std::printf("serving %s\n", store.Current()->Describe().c_str());
  for (size_t i = 0; i < requests->size(); ++i) {
    std::printf("%s\n",
                FormatQueryResponse((*requests)[i], responses[i],
                                    &data.schema()).c_str());
  }
  std::printf("served %zu request(s) on %zu thread(s); cache: %llu hit(s), "
              "%llu miss(es)\n",
              responses.size(), engine.num_threads(),
              static_cast<unsigned long long>(engine.cache_hits()),
              static_cast<unsigned long long>(engine.cache_misses()));
  if (args.stats) std::printf("%s\n", registry.RenderJson().c_str());
  return 0;
}

/// Emits one `{"type":"stats",...}` JSON line to stderr — the
/// periodic / SIGUSR1-triggered dump format of `qikey serve`. One
/// `write(2)` per line, so dumps never interleave with log or trace
/// output.
void DumpStatsLine(const MetricsRegistry& registry) {
  int64_t ts_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::system_clock::now().time_since_epoch())
                      .count();
  std::string line = "{\"type\":\"stats\",\"ts_ms\":";
  line += std::to_string(ts_ms);
  line += ",\"metrics\":";
  line += registry.RenderJson();
  line += "}";
  WriteRawLine(line);
}

/// Splits a comma-separated list of paths ("--snapshot-from artifacts"
/// positional argument).
std::vector<std::string> SplitPaths(const std::string& spec) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    std::string piece = spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!piece.empty()) out.push_back(std::move(piece));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

/// Assembles the discovery-side `SnapshotSource` shared by `serve` and
/// `snapshot save` from the positional input and flags.
bool BuildSnapshotSource(const Args& args, SnapshotSource* source) {
  if (args.snapshot_from == "run") {
    source->kind = SnapshotSource::Kind::kPipelineRun;
    source->csv_path = args.csv_path;
  } else if (args.snapshot_from == "monitor") {
    source->kind = SnapshotSource::Kind::kMonitor;
    source->csv_path = args.csv_path;
  } else {
    source->kind = SnapshotSource::Kind::kShardArtifacts;
    source->artifact_paths = SplitPaths(args.csv_path);
  }
  source->pipeline.eps = args.eps;
  source->pipeline.num_threads = args.threads;
  if (!ParseBackend(args.backend, &source->pipeline.backend)) return false;
  source->seed = args.seed;
  source->max_key_size = args.max_size;
  source->window = args.window;
  return true;
}

/// `qikey snapshot save`: build one serving snapshot (same sources as
/// `serve`) and freeze it into a QSNP1 artifact at --out.
int RunSnapshotSave(const Args& args) {
  if (args.out.empty()) {
    std::fprintf(stderr, "snapshot save needs --out FILE\n");
    return 2;
  }
  SnapshotSource source;
  if (!BuildSnapshotSource(args, &source)) return 2;
  Result<ServeSnapshot> snapshot = LoadSnapshot(source);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "cannot build snapshot: %s\n",
                 snapshot.status().ToString().c_str());
    return 1;
  }
  Result<std::string> image = snapfile::SerializeSnapshot(*snapshot);
  if (!image.ok()) {
    std::fprintf(stderr, "cannot serialize snapshot: %s\n",
                 image.status().ToString().c_str());
    return 1;
  }
  Status written = WriteFileBytes(*image, args.out);
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %zu bytes, %s\n", args.out.c_str(), image->size(),
              snapshot->Describe().c_str());
  return 0;
}

/// `qikey snapshot inspect`: validate the file's layout and print the
/// header + section table as one JSON object. Exit 2 on a malformed
/// file so scripts can distinguish corruption from runtime errors.
int RunSnapshotInspect(const Args& args) {
  Result<snapfile::SnapshotFileInfo> info =
      snapfile::InspectSnapshotFile(args.csv_path);
  if (!info.ok()) {
    std::fprintf(stderr, "%s\n", info.status().ToString().c_str());
    return 2;
  }
  std::printf("%s\n", snapfile::RenderSnapshotInfoJson(*info).c_str());
  return 0;
}

/// `qikey serve`: build + publish one snapshot, run the epoll server
/// until SIGTERM/SIGINT, hot-swap on SIGHUP. The positional argument is
/// the CSV (run/monitor) or a comma-separated artifact list; with
/// --snapshot-file the snapshot is mapped from a QSNP1 artifact instead
/// and SIGHUP re-reads the file.
int RunServeNet(const Args& args) {
  const bool from_file = !args.snapshot_file.empty();
  if (from_file == !args.csv_path.empty()) {
    std::fprintf(stderr, from_file
                             ? "serve takes a positional input or "
                               "--snapshot-file, not both\n"
                             : "serve needs an input "
                               "(csv/artifacts or --snapshot-file)\n");
    return 2;
  }
  SnapshotSource source;
  if (!from_file && !BuildSnapshotSource(args, &source)) return 2;
  // One loader for startup and every SIGHUP: rebuild from the source,
  // or re-map the artifact (picking up a newly written file).
  auto load = [&]() -> Result<ServeSnapshot> {
    if (from_file) return snapfile::ReadSnapshotFile(args.snapshot_file);
    return LoadSnapshot(source);
  };

  Result<ServeSnapshot> snapshot = load();
  if (!snapshot.ok()) {
    std::fprintf(stderr, "cannot build snapshot: %s\n",
                 snapshot.status().ToString().c_str());
    return 1;
  }
  Schema schema = snapshot->schema();
  SnapshotStore store;
  Result<uint64_t> epoch = store.Publish(std::move(*snapshot));
  if (!epoch.ok()) {
    std::fprintf(stderr, "%s\n", epoch.status().ToString().c_str());
    return 1;
  }

  QueryEngineOptions engine_options;
  engine_options.num_threads = args.threads;
  engine_options.cache_capacity = args.cache;
  QueryEngine engine(&store, engine_options);

  ServerOptions options;
  Result<HostPort> listen = ParseHostPort(args.listen);
  if (!listen.ok()) {
    std::fprintf(stderr, "bad --listen: %s\n",
                 listen.status().ToString().c_str());
    return 2;
  }
  options.listen = *listen;
  options.max_connections = args.max_conns;
  options.max_pending_per_conn = args.queue_depth;
  // The global cap shields the engine from many simultaneously full
  // connections; scale it with the per-connection depth but keep it
  // bounded regardless of --max-conns.
  options.max_pending_global = args.queue_depth * 32;
  options.idle_timeout_ms = static_cast<int>(args.idle_timeout_ms);
  // One registry for the whole process: the server registers its own
  // reactor/worker metrics into it and chains the engine's (cache,
  // snapshot, pass timings), so the `stats` verb, the periodic dump,
  // and SIGUSR1 all render the same families.
  MetricsRegistry registry;
  options.metrics = &registry;
  options.trace_sample = args.trace_sample;

  ServeServer server(&engine, schema, options);
  shutdown_flags::InstallSignalFlags();
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::printf("serving %s\n", store.Current()->Describe().c_str());
  // Parsed by scripts (and the smoke test) to discover an ephemeral
  // port — keep the format stable and flush immediately.
  std::printf("listening on %s:%u\n", options.listen.host.c_str(),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  using Clock = std::chrono::steady_clock;
  Clock::time_point next_dump =
      Clock::now() + std::chrono::seconds(args.stats_interval_sec);
  while (!shutdown_flags::ShutdownRequested() && server.running()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    bool dump = false;
    if (shutdown_flags::StatsDumpRequested()) {
      shutdown_flags::ClearStatsDump();
      dump = true;
    }
    if (args.stats_interval_sec > 0 && Clock::now() >= next_dump) {
      next_dump += std::chrono::seconds(args.stats_interval_sec);
      dump = true;
    }
    if (dump) DumpStatsLine(registry);
    if (shutdown_flags::ReloadRequested()) {
      shutdown_flags::ClearReload();
      // Hot swap: rebuild from the same source (or re-map the snapshot
      // file) and publish. Batches already executing finish on their
      // pinned epoch; a failure leaves the current snapshot serving.
      Result<ServeSnapshot> reloaded = load();
      if (!reloaded.ok()) {
        std::fprintf(stderr, "reload failed (still serving): %s\n",
                     reloaded.status().ToString().c_str());
        continue;
      }
      Result<uint64_t> swapped = store.Publish(std::move(*reloaded));
      if (swapped.ok()) {
        std::printf("reloaded: %s\n", store.Current()->Describe().c_str());
        std::fflush(stdout);
      }
    }
  }
  server.Shutdown();
  server.Join();

  // Final snapshot after the drain, so an interval-scraping consumer
  // always sees the complete totals.
  if (args.stats_interval_sec > 0) DumpStatsLine(registry);
  ServerStats stats = server.stats();
  std::printf("drained: %llu conn(s), %llu line(s), %llu response(s), "
              "%llu overload, %llu parse error(s), %llu batch(es)\n",
              static_cast<unsigned long long>(stats.connections_accepted),
              static_cast<unsigned long long>(stats.lines_received),
              static_cast<unsigned long long>(stats.responses_sent),
              static_cast<unsigned long long>(stats.overload_responses),
              static_cast<unsigned long long>(stats.parse_errors),
              static_cast<unsigned long long>(stats.batches_executed));
  return 0;
}

int RunQuery(const Dataset& data, const Args& args, Rng* rng) {
  if (!args.requests.empty()) return RunServe(data, args, rng);
  if (args.attrs.empty()) {
    std::fprintf(stderr, "query needs --attrs a,b,c (or --requests FILE)\n");
    return 2;
  }
  AttributeSet attrs = ResolveAttrs(data, args.attrs);
  TupleSampleFilterOptions opts;
  opts.eps = args.eps;
  auto filter = TupleSampleFilter::Build(data, opts, rng);
  if (!filter.ok()) {
    std::fprintf(stderr, "%s\n", filter.status().ToString().c_str());
    return 1;
  }
  FilterVerdict v = filter->Query(attrs);
  std::printf("filter (%llu tuples): %s\n",
              static_cast<unsigned long long>(filter->sample_size()),
              v == FilterVerdict::kAccept ? "ACCEPT" : "REJECT");
  SeparationClass truth = Classify(data, attrs, args.eps);
  const char* truth_name = truth == SeparationClass::kKey ? "exact key"
                           : truth == SeparationClass::kBad
                               ? "bad (below 1-eps)"
                               : "eps-separation key (gray zone)";
  std::printf("exact:  %s separates %.6f%% of pairs -> %s\n",
              attrs.ToString(&data.schema()).c_str(),
              100.0 * SeparationRatio(data, attrs), truth_name);
  return 0;
}

int RunMask(const Dataset& data, const Args& args, Rng* rng) {
  MaskingOptions opts;
  opts.eps = args.eps;
  auto result = FindMaskingSet(data, opts, rng);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("mask %zu attribute(s) to kill all %g-quasi-identifiers: %s\n",
              result->masked.size(), args.eps,
              result->masked.ToString(&data.schema()).c_str());
  std::printf("  residual separation of released attributes: %.4f%%\n",
              100.0 * result->residual_separation);
  if (!result->achieved) {
    std::printf("  warning: target not reached within the mask budget\n");
  }
  return 0;
}

int RunAfd(const Dataset& data, const Args& args) {
  if (args.rhs.empty()) {
    std::fprintf(stderr, "afd needs --rhs <column>\n");
    return 2;
  }
  int rhs = data.schema().Find(args.rhs);
  if (rhs < 0) {
    std::fprintf(stderr, "unknown attribute: %s\n", args.rhs.c_str());
    return 2;
  }
  auto found = DiscoverMinimalAfds(data, static_cast<AttributeIndex>(rhs),
                                   args.afd_error, args.max_size);
  if (!found.ok()) {
    std::fprintf(stderr, "%s\n", found.status().ToString().c_str());
    return 1;
  }
  std::printf("minimal approximate FDs X -> %s (conditional error <= %g, "
              "|X| <= %u): %zu found\n",
              args.rhs.c_str(), args.afd_error, args.max_size,
              found->size());
  for (const AfdCandidate& c : *found) {
    std::printf("  %-44s g2=%.6f conditional=%.4f\n",
                c.lhs.ToString(&data.schema()).c_str(), c.error.g2,
                c.error.conditional);
  }
  return 0;
}

int RunAnonymize(const Dataset& data, const Args& args) {
  if (args.attrs.empty()) {
    std::fprintf(stderr, "anonymize needs --attrs a,b,c\n");
    return 2;
  }
  AttributeSet qi_set = ResolveAttrs(data, args.attrs);
  std::vector<AttributeIndex> qi = qi_set.ToIndices();
  std::vector<GeneralizationHierarchy> hierarchies;
  for (AttributeIndex a : qi) {
    uint32_t card = data.column(a).cardinality();
    hierarchies.push_back(card <= 2
                              ? GeneralizationHierarchy::KeepOrSuppress(card)
                              : GeneralizationHierarchy::Intervals(card, 4));
  }
  GeneralizationOptions opts;
  opts.k = args.k;
  opts.max_suppression = args.suppress;
  auto result = FindMinimalGeneralization(data, qi, hierarchies, opts);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("minimal generalization for %llu-anonymity on %s "
              "(suppression budget %.1f%%):\n",
              static_cast<unsigned long long>(args.k),
              qi_set.ToString(&data.schema()).c_str(),
              100.0 * args.suppress);
  for (size_t i = 0; i < qi.size(); ++i) {
    std::printf("  %-20s level %u of %u (domain %u -> %u)\n",
                data.schema().name(qi[i]).c_str(), result->levels[i],
                hierarchies[i].levels() - 1,
                hierarchies[i].CardinalityAt(0),
                hierarchies[i].CardinalityAt(result->levels[i]));
  }
  std::printf("  achieved k = %llu, suppressed %.2f%%, classes = %llu\n",
              static_cast<unsigned long long>(result->anonymity_level),
              100.0 * result->suppressed,
              static_cast<unsigned long long>(result->classes));
  return 0;
}

int RunDiscover(const Dataset& data, const Args& args, Rng* rng) {
  PipelineOptions opts;
  opts.eps = args.eps;
  opts.num_threads = args.threads;
  if (!ParseBackend(args.backend, &opts.backend)) return 2;
  DiscoveryPipeline pipeline(opts);
  auto result = pipeline.Run(data, rng);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", result->Report(&data.schema()).c_str());
  if (result->verdict != FilterVerdict::kAccept) {
    std::fprintf(stderr,
                 "verification failed: the emitted key was rejected\n");
    return 3;
  }
  return 0;
}

/// Sharded / out-of-core discover: the CSV is ingested by the pipeline
/// itself (never loaded whole here).
int RunDiscoverSharded(const Args& args) {
  PipelineOptions opts;
  opts.eps = args.eps;
  opts.num_threads = args.threads;
  if (!ParseBackend(args.backend, &opts.backend)) return 2;
  ShardedRunOptions sharded;
  sharded.num_shards = args.shards;
  sharded.shard_rows = args.shard_rows;
  sharded.memory_budget_bytes =
      static_cast<uint64_t>(args.memory_budget_mb * 1024.0 * 1024.0);
  DiscoveryPipeline pipeline(opts);
  auto result = pipeline.RunSharded(args.csv_path, sharded, args.seed);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  // The header is cheap; reload just the names for readable output.
  Result<std::vector<std::string>> names =
      ReadCsvAttributeNames(args.csv_path);
  Schema schema;
  if (names.ok()) schema = Schema(*names);
  std::printf("%s",
              result->Report(names.ok() ? &schema : nullptr).c_str());
  if (result->verdict != FilterVerdict::kAccept) {
    std::fprintf(stderr,
                 "verification failed: the emitted key was rejected\n");
    return 3;
  }
  return 0;
}

int RunMonitor(const Dataset& data, const Args& args) {
  MonitorOptions opts;
  opts.eps = args.eps;
  opts.max_key_size = args.max_size;
  opts.num_threads = args.threads;
  opts.window_capacity = args.window;
  if (!ParseBackend(args.backend, &opts.backend)) return 2;
  auto monitor = KeyMonitor::Make(data.schema(), opts, args.seed);
  if (!monitor.ok()) {
    std::fprintf(stderr, "%s\n", monitor.status().ToString().c_str());
    return 1;
  }
  Status replay = (*monitor)->InsertDataset(data);
  if (!replay.ok()) {
    std::fprintf(stderr, "%s\n", replay.ToString().c_str());
    return 1;
  }
  std::printf("replayed %zu row(s)%s; %llu key-churn event(s):\n",
              data.num_rows(),
              args.window > 0 ? " through a sliding window" : "",
              static_cast<unsigned long long>((*monitor)->events().size()));
  for (const KeyEvent& event : (*monitor)->events()) {
    const char* kind = event.kind == KeyEventKind::kAdded     ? "+ key"
                       : event.kind == KeyEventKind::kRemoved ? "- key"
                                                              : "rebuilt";
    std::printf("  [row %6llu] %s %s\n",
                static_cast<unsigned long long>(event.epoch), kind,
                event.kind == KeyEventKind::kRebuilt
                    ? "(incremental repair budget exhausted)"
                    : event.key.ToString(&data.schema()).c_str());
  }
  std::printf("updates: %llu untouched the sample, %llu repaired, %llu "
              "rebuilt\n",
              static_cast<unsigned long long>((*monitor)->untouched_updates()),
              static_cast<unsigned long long>((*monitor)->repaired_updates()),
              static_cast<unsigned long long>((*monitor)->rebuilds()));
  std::printf("%s", (*monitor)->Snapshot()->Report(&data.schema()).c_str());
  return 0;
}

int Main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage();
    return 2;
  }
  if (args.log_json) LogMessage::SetJsonLines(true);
  if (args.command == "discover" &&
      (args.shards > 0 || args.memory_budget_mb > 0.0 ||
       args.shard_rows > 0)) {
    return RunDiscoverSharded(args);
  }
  // serve and snapshot load their own input (CSV, artifact files, or a
  // snapshot file) via LoadSnapshot / the snapfile reader.
  if (args.command == "serve") return RunServeNet(args);
  if (args.command == "snapshot") {
    return args.sub == "save" ? RunSnapshotSave(args)
                              : RunSnapshotInspect(args);
  }
  Result<Dataset> data = LoadCsvDataset(args.csv_path);
  if (!data.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", args.csv_path.c_str(),
                 data.status().ToString().c_str());
    return 1;
  }
  Rng rng(args.seed);
  if (args.command == "profile") return RunProfile(*data);
  if (args.command == "minkey") return RunMinKey(*data, args, &rng);
  if (args.command == "keys") return RunKeys(*data, args);
  if (args.command == "audit") return RunAudit(*data, args, &rng);
  if (args.command == "query") return RunQuery(*data, args, &rng);
  if (args.command == "mask") return RunMask(*data, args, &rng);
  if (args.command == "afd") return RunAfd(*data, args);
  if (args.command == "anonymize") return RunAnonymize(*data, args);
  if (args.command == "discover") return RunDiscover(*data, args, &rng);
  if (args.command == "monitor") return RunMonitor(*data, args);
  Usage();
  return 2;
}

}  // namespace
}  // namespace qikey

int main(int argc, char** argv) { return qikey::Main(argc, argv); }
