// qikey-gen — synthetic data generator companion to the qikey CLI.
//
// Generates the data-set families used throughout the paper's
// reproduction, writing standard CSV so any command of `qikey` (or any
// other tool) can consume them:
//
//   qikey-gen adult   --out adult.csv  [--rows N]
//   qikey-gen covtype --out cov.csv    [--rows N]
//   qikey-gen cps     --out cps.csv    [--rows N]
//   qikey-gen grid    --out grid.csv   --rows N --m M --q Q
//   qikey-gen clique  --out cliq.csv   --rows N --m M --eps E
//   qikey-gen encoding --out enc.csv   --k K --t T --m M
//
// Deterministic for a fixed --seed (default 1).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "util/flag_parse.h"

#include "data/csv_loader.h"
#include "data/generators/encoding_lb.h"
#include "data/generators/planted_clique.h"
#include "data/generators/tabular.h"
#include "data/generators/uniform_grid.h"
#include "util/rng.h"

namespace qikey {
namespace {

struct Args {
  std::string family;
  std::string out;
  uint64_t rows = 0;
  uint32_t m = 8;
  uint32_t q = 10;
  uint32_t k = 2;
  uint32_t t = 3;
  double eps = 0.01;
  uint64_t seed = 1;
};

void Usage() {
  std::fprintf(stderr,
               "usage: qikey-gen <adult|covtype|cps|grid|clique|encoding> "
               "--out FILE\n"
               "                 [--rows N] [--m M] [--q Q] [--k K] "
               "[--t T] [--eps E] [--seed S]\n");
}

bool ParseArgs(int argc, char** argv, Args* args) {
  if (argc < 2) return false;
  args->family = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag %s is missing its value\n", flag.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    long long n = 0;
    if (flag == "--out") {
      if (!(v = next())) return false;
      args->out = v;
    } else if (flag == "--rows") {
      if (!(v = next()) || !ParseIntFlag(flag, v, 1, 1ll << 31, &n)) {
        return false;
      }
      args->rows = static_cast<uint64_t>(n);
    } else if (flag == "--m") {
      if (!(v = next()) || !ParseIntFlag(flag, v, 1, 1 << 16, &n)) {
        return false;
      }
      args->m = static_cast<uint32_t>(n);
    } else if (flag == "--q") {
      if (!(v = next()) || !ParseIntFlag(flag, v, 1, 1 << 22, &n)) {
        return false;
      }
      args->q = static_cast<uint32_t>(n);
    } else if (flag == "--k") {
      if (!(v = next()) || !ParseIntFlag(flag, v, 1, 1 << 16, &n)) {
        return false;
      }
      args->k = static_cast<uint32_t>(n);
    } else if (flag == "--t") {
      if (!(v = next()) || !ParseIntFlag(flag, v, 1, 1 << 16, &n)) {
        return false;
      }
      args->t = static_cast<uint32_t>(n);
    } else if (flag == "--eps") {
      if (!(v = next()) || !ParseDoubleFlag(flag, v, 0.0, 1.0, true, true,
                                            "(0, 1)", &args->eps)) {
        return false;
      }
    } else if (flag == "--seed") {
      if (!(v = next()) || !ParseUint64Flag(flag, v, &args->seed)) {
        return false;
      }
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  if (args->out.empty()) {
    std::fprintf(stderr, "--out FILE is required\n");
    return false;
  }
  return true;
}

int Main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage();
    return 2;
  }
  Rng rng(args.seed);
  Dataset dataset;
  if (args.family == "adult") {
    TabularSpec spec = AdultLikeSpec();
    if (args.rows > 0) spec.num_rows = args.rows;
    dataset = MakeTabular(spec, &rng);
  } else if (args.family == "covtype") {
    TabularSpec spec = CovtypeLikeSpec();
    if (args.rows > 0) spec.num_rows = args.rows;
    dataset = MakeTabular(spec, &rng);
  } else if (args.family == "cps") {
    dataset = MakeTabular(CpsLikeSpec(args.rows > 0 ? args.rows : 150000),
                          &rng);
  } else if (args.family == "grid") {
    if (args.rows == 0) {
      std::fprintf(stderr, "grid needs --rows\n");
      return 2;
    }
    dataset = MakeUniformGridSample(args.m, args.q, args.rows, &rng);
  } else if (args.family == "clique") {
    if (args.rows == 0) {
      std::fprintf(stderr, "clique needs --rows\n");
      return 2;
    }
    PlantedCliqueOptions opts;
    opts.num_rows = args.rows;
    opts.num_attributes = args.m;
    opts.epsilon = args.eps;
    dataset = MakePlantedClique(opts, &rng);
  } else if (args.family == "encoding") {
    BitMatrix c = MakeRandomColumnSparseMatrix(args.k, args.t, args.m, &rng);
    dataset = MakeEncodingDataset(c);
  } else {
    Usage();
    return 2;
  }
  Status st = SaveCsvDataset(dataset, args.out);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %zu rows x %zu attributes (%s, seed %llu)\n",
              args.out.c_str(), dataset.num_rows(),
              dataset.num_attributes(), args.family.c_str(),
              static_cast<unsigned long long>(args.seed));
  return 0;
}

}  // namespace
}  // namespace qikey

int main(int argc, char** argv) { return qikey::Main(argc, argv); }
