#!/usr/bin/env python3
"""qikey project invariant linter.

Enforces the repo's determinism and robustness house rules — the ones a
compiler cannot check and reviewers keep re-litigating:

  QL001 unchecked-number-parse
      atoi/atol/atoll/atof are banned everywhere outside src/util/
      (they return 0 on garbage, indistinguishable from a real 0), and
      the strtol/strtod family must pass a real end-pointer, never
      nullptr — parse errors must be detectable. Use
      src/util/flag_parse.h for argv, tools/qikey_cli.cc-style strict
      loops elsewhere.

  QL002 unseeded-randomness
      rand()/srand()/std::random_device are banned outside
      src/util/rng.*. Every random choice must flow from a seeded
      qikey::Rng so any run is reproducible from its seed.

  QL003 unordered-iteration-feeds-output
      Iterating a std::unordered_map/unordered_set inside a function
      that also serializes (ByteWriter / JSON writer / Serialize) is
      banned: hash-order would leak into wire bytes or rendered JSON
      and break byte-for-byte determinism. Copy into a sorted/std::map
      container first (see MetricsSnapshot), or key the loop on an
      ordered structure.

  QL004 naked-new
      `new` may appear only in the same statement as a smart-pointer
      adoption (unique_ptr/shared_ptr construction or .reset). A raw
      owning pointer has no exception-safe owner.

  QL005 raw-stderr
      Inside src/ (except src/util/, which implements the logger),
      fprintf(stderr)/std::cerr/perror are banned: concurrent writers
      interleave partial lines. Log through QIKEY_LOG / WriteRawLine,
      whose single write(2) keeps every line atomic.

Scope: src/, tools/, bench/, examples/, fuzz/ (*.h, *.cc). Findings
print as `path:line: QLxxx: message`; exit 1 if any.

Fixtures/self-test: a file may carry `// LINT-PATH: virtual/path.cc`
(the path rules are evaluated against) and `// EXPECT-LINT: QLxxx`
lines. `--self-test` runs every file in tests/lint_fixtures/ and
checks the findings match the expectations exactly — the linter's own
regression suite (registered in ctest as qikey_lint_self_test).
"""

import argparse
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCAN_DIRS = ("src", "tools", "bench", "examples", "fuzz")
EXTENSIONS = (".h", ".cc")

ATOI_RE = re.compile(r"\b(atoi|atol|atoll|atof)\s*\(")
STRTO_RE = re.compile(r"\b(strtol|strtoll|strtoul|strtoull|strtof|strtod|strtold)\s*\(")
RAND_RE = re.compile(r"\b(rand|srand)\s*\(|\brandom_device\b")
STDERR_RE = re.compile(
    r"fprintf\s*\(\s*stderr|\bfputs\s*\([^;]*\bstderr\b|std::cerr|\bperror\s*\("
)
NEW_RE = re.compile(r"\bnew\b")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(")
UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set)\s*<[^;(){}]*?>\s*(?:&\s*)?([A-Za-z_]\w*)\s*"
    r"(?:;|=|\{|,|\))",
    re.S,
)
# Serialization markers: a function containing one of these feeds the
# wire format or rendered JSON. Deliberately narrow — reactor functions
# iterate conns_ for bookkeeping and must not trip the rule.
OUTPUT_MARKERS = ("ByteWriter", "AppendJson", "RenderJson", "JsonWriter",
                  "Serialize(")

SMART_ADOPTION = ("unique_ptr", "shared_ptr", "make_unique", "make_shared",
                  ".reset(", "WrapUnique")

LINT_PATH_RE = re.compile(r"//\s*LINT-PATH:\s*(\S+)")
EXPECT_RE = re.compile(r"//\s*EXPECT-LINT:\s*(QL\d{3})")


def strip_code(text):
    """Blanks comments and string/char literals, preserving newlines and
    column positions, so findings keep real line numbers and literal
    contents cannot trip the rules."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out.append(" ")
                i += 1
        elif c == "/" and nxt == "*":
            out.append("  ")
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and
                                 text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif c == "R" and nxt == '"':
            # Raw string literal: R"delim( ... )delim"
            j = i + 2
            while j < n and text[j] != "(":
                j += 1
            delim = text[i + 2:j]
            close = ")" + delim + '"'
            end = text.find(close, j)
            end = n if end == -1 else end + len(close)
            for k in range(i, end):
                out.append("\n" if text[k] == "\n" else " ")
            i = end
        elif c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out.append("  ")
                    i += 2
                else:
                    out.append("\n" if text[i] == "\n" else " ")
                    i += 1
            if i < n:
                out.append(" ")
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def call_args(text, open_paren):
    """Splits the argument list of the call whose '(' is at
    `open_paren` into top-level comma-separated pieces."""
    depth = 0
    args = []
    current = []
    i = open_paren
    while i < len(text):
        c = text[i]
        if c in "([{":
            depth += 1
            if depth > 1:
                current.append(c)
        elif c in ")]}":
            depth -= 1
            if depth == 0:
                args.append("".join(current).strip())
                return args
            current.append(c)
        elif c == "," and depth == 1:
            args.append("".join(current).strip())
            current = []
        else:
            current.append(c)
        i += 1
    return args


def statement_around(text, offset):
    """The statement containing `offset`: from the previous ;/{/} to the
    next ; — the window QL004 checks for a smart-pointer adoption."""
    begin = max(text.rfind(";", 0, offset), text.rfind("{", 0, offset),
                text.rfind("}", 0, offset)) + 1
    end = text.find(";", offset)
    end = len(text) if end == -1 else end
    return text[begin:end]


def function_bodies(text):
    """Yields (start, end) offsets of brace-matched blocks that look
    like function bodies: a '{' preceded by ')' plus optional
    qualifiers. Nested blocks are part of their enclosing body."""
    qualifier = re.compile(
        r"\)\s*(?:const|noexcept|override|final|->\s*[\w:<>,&*\s]+|\s)*\{")
    for match in qualifier.finditer(text):
        start = match.end() - 1
        depth = 0
        for i in range(start, len(text)):
            if text[i] == "{":
                depth += 1
            elif text[i] == "}":
                depth -= 1
                if depth == 0:
                    yield start, i + 1
                    break


def paired_header_text(path):
    base, ext = os.path.splitext(path)
    if ext != ".cc":
        return ""
    header = base + ".h"
    if os.path.exists(header):
        with open(header, encoding="utf-8", errors="replace") as fp:
            return strip_code(fp.read())
    return ""


def base_identifier(expr):
    """The container identifier of a range-for expression: strips
    this->, dereferences, and trailing calls ('*state->conns_',
    'shard.index' -> 'index')."""
    expr = expr.strip().rstrip(")")
    expr = re.sub(r"\(.*$", "", expr)
    for sep in ("->", "."):
        if sep in expr:
            expr = expr.rsplit(sep, 1)[1]
    return expr.strip().lstrip("*&").strip()


class Findings:
    def __init__(self):
        self.items = []  # (path, line, rule, message)

    def add(self, path, line, rule, message):
        self.items.append((path, line, rule, message))


def lint_text(stripped, virtual_path, findings, header_stripped=""):
    under = lambda prefix: virtual_path.startswith(prefix)
    in_util = under("src/util/")

    # QL001 ---------------------------------------------------------
    if not in_util:
        for match in ATOI_RE.finditer(stripped):
            findings.add(virtual_path, line_of(stripped, match.start()),
                         "QL001",
                         f"{match.group(1)}() cannot report parse errors; "
                         "use util/flag_parse.h or strtoll with an "
                         "end-pointer check")
        for match in STRTO_RE.finditer(stripped):
            args = call_args(stripped, stripped.find("(", match.start()))
            if len(args) >= 2 and args[1] in ("nullptr", "NULL", "0"):
                findings.add(virtual_path, line_of(stripped, match.start()),
                             "QL001",
                             f"{match.group(1)}() with a null end-pointer "
                             "swallows trailing garbage; pass a real "
                             "end-pointer and check it")

    # QL002 ---------------------------------------------------------
    if not under("src/util/rng"):
        for match in RAND_RE.finditer(stripped):
            findings.add(virtual_path, line_of(stripped, match.start()),
                         "QL002",
                         "unseeded randomness breaks run-to-run "
                         "reproducibility; draw from a seeded qikey::Rng")

    # QL003 ---------------------------------------------------------
    unordered_names = set(UNORDERED_DECL_RE.findall(stripped))
    unordered_names.update(UNORDERED_DECL_RE.findall(header_stripped))
    if unordered_names:
        for begin, end in function_bodies(stripped):
            body = stripped[begin:end]
            # Markers usually sit in the signature (a ByteWriter* or
            # JsonWriter* parameter), so scan it along with the body.
            sig_start = max(stripped.rfind(";", 0, begin),
                            stripped.rfind("{", 0, begin),
                            stripped.rfind("}", 0, begin)) + 1
            searchable = stripped[sig_start:begin] + body
            if not any(marker in searchable for marker in OUTPUT_MARKERS):
                continue
            for match in RANGE_FOR_RE.finditer(body):
                args = call_args(body, body.find("(", match.start()))
                if len(args) != 1 or ":" not in args[0]:
                    continue  # classic for, not range-for
                container = base_identifier(args[0].rsplit(":", 1)[1])
                if container in unordered_names:
                    findings.add(
                        virtual_path,
                        line_of(stripped, begin + match.start()), "QL003",
                        f"iterating unordered container '{container}' in a "
                        "function that serializes output makes wire/JSON "
                        "bytes depend on hash order; iterate a sorted copy")

    # QL004 ---------------------------------------------------------
    for match in NEW_RE.finditer(stripped):
        statement = statement_around(stripped, match.start())
        if any(tok in statement for tok in SMART_ADOPTION):
            continue
        if re.search(r"\bnew\s*\(", statement):
            continue  # placement new manages no ownership
        findings.add(virtual_path, line_of(stripped, match.start()), "QL004",
                     "naked new: adopt the allocation into a "
                     "unique_ptr/shared_ptr in the same statement")

    # QL005 ---------------------------------------------------------
    if under("src/") and not in_util:
        for match in STDERR_RE.finditer(stripped):
            findings.add(virtual_path, line_of(stripped, match.start()),
                         "QL005",
                         "raw stderr writes interleave under concurrency; "
                         "use QIKEY_LOG / WriteRawLine (single write(2) "
                         "per line)")


def lint_file(path, findings):
    with open(path, encoding="utf-8", errors="replace") as fp:
        original = fp.read()
    virtual = None
    match = LINT_PATH_RE.search(original)
    if match:
        virtual = match.group(1)
    rel = os.path.relpath(os.path.abspath(path), REPO_ROOT)
    stripped = strip_code(original)
    lint_text(stripped, virtual or rel, findings,
              paired_header_text(path))


def discover_files(root):
    files = []
    for dirname in SCAN_DIRS:
        top = os.path.join(root, dirname)
        for dirpath, _, names in os.walk(top):
            for name in sorted(names):
                if name.endswith(EXTENSIONS):
                    files.append(os.path.join(dirpath, name))
    return sorted(files)


def self_test(fixtures_dir):
    failures = 0
    ran = 0
    for name in sorted(os.listdir(fixtures_dir)):
        if not name.endswith(EXTENSIONS):
            continue
        path = os.path.join(fixtures_dir, name)
        with open(path, encoding="utf-8", errors="replace") as fp:
            original = fp.read()
        expected = sorted(EXPECT_RE.findall(original))
        findings = Findings()
        lint_file(path, findings)
        actual = sorted(rule for _, _, rule, _ in findings.items)
        ran += 1
        if actual != expected:
            failures += 1
            print(f"SELF-TEST FAIL {name}: expected {expected or 'clean'}, "
                  f"got {actual or 'clean'}")
            for _, line, rule, message in findings.items:
                print(f"    {name}:{line}: {rule}: {message}")
    if failures:
        print(f"self-test: {failures}/{ran} fixture(s) failed")
        return 1
    print(f"self-test: {ran} fixture(s) passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=REPO_ROOT)
    parser.add_argument(
        "--self-test", action="store_true",
        help="lint tests/lint_fixtures/ and compare against EXPECT-LINT")
    parser.add_argument("files", nargs="*",
                        help="lint only these files (default: full scope)")
    args = parser.parse_args()

    if args.self_test:
        return self_test(os.path.join(args.root, "tests", "lint_fixtures"))

    files = args.files or discover_files(args.root)
    findings = Findings()
    for path in files:
        lint_file(path, findings)
    for path, line, rule, message in sorted(findings.items):
        print(f"{path}:{line}: {rule}: {message}")
    if findings.items:
        print(f"qikey_lint: {len(findings.items)} violation(s)")
        return 1
    print(f"qikey_lint: {len(files)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
