#ifndef QIKEY_TOOLS_FLAG_PARSE_H_
#define QIKEY_TOOLS_FLAG_PARSE_H_

// Strict numeric flag parsing shared by the qikey tools. Everything
// here uses strtoll/strtoull/strtod with end-pointer checks — never
// atoi/atof — so garbage, trailing junk, out-of-range values, and NaN
// are usage errors with a message on stderr, not silent zeros.

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace qikey {

/// Strict integer flag: the whole value must be digits (optionally
/// signed) and inside `[min, max]`.
inline bool ParseIntFlag(const std::string& flag, const char* v,
                         long long min, long long max, long long* out) {
  char* end = nullptr;
  errno = 0;
  long long t = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE || t < min || t > max ||
      std::isspace(static_cast<unsigned char>(v[0]))) {
    std::fprintf(stderr, "%s must be an integer in [%lld, %lld], got %s\n",
                 flag.c_str(), min, max, v);
    return false;
  }
  *out = t;
  return true;
}

/// Strict uint64 flag (`--seed` wants the full 64-bit range, which
/// `strtoll` cannot cover). The first character must be a digit:
/// `strtoull` itself skips whitespace and accepts a sign, silently
/// wrapping negatives — " -1" must not become 2^64-1.
inline bool ParseUint64Flag(const std::string& flag, const char* v,
                            uint64_t* out) {
  char* end = nullptr;
  errno = 0;
  unsigned long long t = std::strtoull(v, &end, 10);
  if (!std::isdigit(static_cast<unsigned char>(v[0])) || end == v ||
      *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr, "%s must be a non-negative integer, got %s\n",
                 flag.c_str(), v);
    return false;
  }
  *out = static_cast<uint64_t>(t);
  return true;
}

/// Strict double flag: fully consumed, finite (NaN compares false
/// against any bound, so it is rejected explicitly), and inside the
/// range described by `range`.
inline bool ParseDoubleFlag(const std::string& flag, const char* v,
                            double min, double max, bool min_exclusive,
                            bool max_exclusive, const char* range,
                            double* out) {
  char* end = nullptr;
  errno = 0;
  double t = std::strtod(v, &end);
  bool in_range = min_exclusive ? t > min : t >= min;
  in_range = in_range && (max_exclusive ? t < max : t <= max);
  if (end == v || *end != '\0' || !std::isfinite(t) || !in_range) {
    std::fprintf(stderr, "%s must be a number in %s, got %s\n", flag.c_str(),
                 range, v);
    return false;
  }
  *out = t;
  return true;
}

}  // namespace qikey

#endif  // QIKEY_TOOLS_FLAG_PARSE_H_
