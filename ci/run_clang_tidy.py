#!/usr/bin/env python3
"""clang-tidy gate for qikey.

Runs clang-tidy (config: .clang-tidy at the repo root) over every
first-party translation unit in the compilation database, then compares
the findings against a tracked baseline (ci/clang_tidy_baseline.json).
The baseline is zero-warning: any finding fails the gate. The file
exists so that, should an unavoidable finding ever appear (e.g. a new
clang-tidy release adds a check that misfires on a pinned idiom), it
can be suppressed explicitly, reviewed, and burned down — instead of
the gate being loosened wholesale.

Per-path strictness: bugprone-narrowing-conversions is disabled
globally (too noisy for math/engine code) but re-enabled here for files
that feed the wire format or parse untrusted input, where a silent
narrowing is a protocol bug rather than a style issue.

Exit codes: 0 clean (or clang-tidy unavailable without --strict),
1 findings diverge from the baseline, 2 usage/environment error.
"""

import argparse
import concurrent.futures
import json
import os
import re
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# First-party code the gate covers (relative to the repo root).
SOURCE_PREFIXES = ("src/", "tools/", "bench/", "examples/", "fuzz/")

# Wire/parse paths where narrowing conversions are protocol bugs.
# Matched as prefixes of the repo-relative path.
NARROWING_STRICT_PREFIXES = (
    "src/data/serialize",
    "src/data/wire_codec",
    "src/serve/protocol",
    "src/serve/request",
    "src/snapfile/",
)

FINDING_RE = re.compile(
    r"^(?P<path>[^:\s][^:]*):(?P<line>\d+):(?P<col>\d+):\s+"
    r"(?:warning|error):\s+(?P<message>.*?)\s+\[(?P<checks>[^\]]+)\]$"
)

CANDIDATE_BINARIES = ("clang-tidy",) + tuple(
    f"clang-tidy-{v}" for v in range(21, 13, -1)
)


def find_clang_tidy(explicit):
    if explicit:
        return explicit if shutil.which(explicit) else None
    for name in CANDIDATE_BINARIES:
        if shutil.which(name):
            return name
    return None


def load_compile_db(build_dir):
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(db_path):
        sys.stderr.write(
            f"error: {db_path} not found; configure with "
            "cmake -B build -S . first (CMAKE_EXPORT_COMPILE_COMMANDS "
            "is on by default)\n"
        )
        sys.exit(2)
    with open(db_path, encoding="utf-8") as fp:
        return json.load(fp)


def first_party_sources(compile_db):
    files = set()
    for entry in compile_db:
        path = os.path.normpath(
            os.path.join(entry.get("directory", ""), entry["file"])
        )
        rel = os.path.relpath(path, REPO_ROOT)
        if rel.startswith(".."):
            continue
        if rel.startswith(SOURCE_PREFIXES):
            files.add(rel)
    return sorted(files)


def extra_checks_for(rel_path):
    if rel_path.startswith(NARROWING_STRICT_PREFIXES):
        # -checks APPENDS to the .clang-tidy Checks list.
        return "bugprone-narrowing-conversions"
    return None


def run_one(binary, build_dir, rel_path):
    cmd = [binary, "-p", build_dir, "--quiet"]
    extra = extra_checks_for(rel_path)
    if extra:
        cmd.append(f"-checks={extra}")
    cmd.append(os.path.join(REPO_ROOT, rel_path))
    proc = subprocess.run(
        cmd, capture_output=True, text=True, cwd=REPO_ROOT, check=False
    )
    findings = []
    for line in proc.stdout.splitlines():
        match = FINDING_RE.match(line)
        if not match:
            continue
        path = os.path.normpath(match.group("path"))
        if os.path.isabs(path):
            path = os.path.relpath(path, REPO_ROOT)
        if path.startswith(".."):
            continue  # system / toolchain header
        for check in match.group("checks").split(","):
            findings.append({"file": path, "check": check.strip()})
    # clang-tidy exits nonzero on hard compile errors too; surface those
    # rather than silently reporting the file clean.
    hard_error = proc.returncode != 0 and not findings
    return rel_path, findings, hard_error, proc.stderr


def summarize(findings):
    """Collapses findings to {(file, check): count} — line numbers churn
    with unrelated edits, so the baseline is keyed structurally."""
    counts = {}
    for f in findings:
        key = (f["file"], f["check"])
        counts[key] = counts.get(key, 0) + 1
    return counts


def load_baseline(path):
    with open(path, encoding="utf-8") as fp:
        data = json.load(fp)
    return {
        (e["file"], e["check"]): e["count"] for e in data.get("findings", [])
    }


def write_baseline(path, counts):
    findings = [
        {"file": file, "check": check, "count": count}
        for (file, check), count in sorted(counts.items())
    ]
    with open(path, "w", encoding="utf-8") as fp:
        json.dump({"findings": findings}, fp, indent=2, sort_keys=True)
        fp.write("\n")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default=os.path.join(REPO_ROOT, "build"))
    parser.add_argument(
        "--baseline",
        default=os.path.join(REPO_ROOT, "ci", "clang_tidy_baseline.json"),
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to the current findings",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail (instead of skipping) when clang-tidy is unavailable",
    )
    parser.add_argument("--clang-tidy", default=None, help="binary override")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 4)
    parser.add_argument(
        "files", nargs="*", help="restrict to these repo-relative sources"
    )
    args = parser.parse_args()

    binary = find_clang_tidy(args.clang_tidy)
    if binary is None:
        if args.strict:
            sys.stderr.write("error: clang-tidy not found (--strict)\n")
            return 2
        print("run_clang_tidy: clang-tidy not found; skipping (CI runs it)")
        return 0

    compile_db = load_compile_db(args.build_dir)
    sources = first_party_sources(compile_db)
    if args.files:
        wanted = {os.path.normpath(f) for f in args.files}
        sources = [s for s in sources if s in wanted]
        missing = wanted - set(sources)
        if missing:
            sys.stderr.write(
                "error: not in compile_commands.json: "
                + ", ".join(sorted(missing))
                + "\n"
            )
            return 2
    if not sources:
        sys.stderr.write("error: no first-party sources selected\n")
        return 2

    all_findings = []
    hard_errors = []
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        futures = [
            pool.submit(run_one, binary, args.build_dir, rel)
            for rel in sources
        ]
        for future in concurrent.futures.as_completed(futures):
            rel_path, findings, hard_error, stderr = future.result()
            all_findings.extend(findings)
            if hard_error:
                hard_errors.append((rel_path, stderr))

    if hard_errors:
        for rel_path, stderr in hard_errors:
            sys.stderr.write(f"clang-tidy failed on {rel_path}:\n{stderr}\n")
        return 2

    counts = summarize(all_findings)
    if args.update_baseline:
        write_baseline(args.baseline, counts)
        print(
            f"baseline updated: {sum(counts.values())} finding(s) across "
            f"{len(counts)} (file, check) pair(s)"
        )
        return 0

    baseline = load_baseline(args.baseline)
    regressions = {
        key: count
        for key, count in counts.items()
        if count > baseline.get(key, 0)
    }
    stale = {
        key: count
        for key, count in baseline.items()
        if counts.get(key, 0) < count
    }

    if regressions:
        print(f"clang-tidy gate FAILED: {len(regressions)} regression(s)")
        for (file, check), count in sorted(regressions.items()):
            over = count - baseline.get((file, check), 0)
            print(f"  {file}: {check} (+{over})")
        print("fix the findings, or (after review) re-run with "
              "--update-baseline")
        return 1
    if stale:
        # Improvements should be locked in so they cannot silently
        # regress back to the old baseline.
        print(f"clang-tidy gate: {len(stale)} baseline entry(ies) no longer "
              "fire; run with --update-baseline to lock in the improvement")
    print(
        f"clang-tidy gate passed: {len(sources)} file(s), "
        f"{sum(counts.values())} finding(s) (baseline "
        f"{sum(baseline.values())})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
