#!/usr/bin/env python3
"""Warn when bench wall-times regress versus a committed baseline.

Usage:
  check_bench_regression.py --baseline bench/baselines/BENCH_pipeline.json \
      --current BENCH_pipeline.json [--threshold 0.25]

Entries are matched by (name, params). A current ns_per_op more than
`threshold` above the baseline emits a GitHub Actions ::warning::
annotation. Advisory by design: CI hardware differs from the machine
that recorded the baseline, so regressions warn instead of failing; the
exit code is non-zero only for malformed input. A bench whose baseline
was never committed (a brand-new bench, or a fork without baselines)
prints an advisory note and exits 0 — missing history must not block
the run that would create it.

With --p50-overhead-threshold F, additionally compares WITHIN the
current file: every (name, params, quantile=p50) pair that differs
only in instrumentation=idle vs instrumentation=on. An instrumented
p50 more than F above its idle twin warns — both measurements come
from the same run on the same hardware, so this comparison is immune
to the cross-machine noise that keeps the baseline check advisory.
"""

import argparse
import json
import os
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for entry in doc.get("benchmarks", []):
        key = (entry["name"], tuple(sorted(entry.get("params", {}).items())))
        out[key] = float(entry["ns_per_op"])
    return out


def check_instrumentation_overhead(current, threshold):
    """Warns when instrumentation=on p50 exceeds its idle twin by more
    than `threshold` (a fraction). Returns the number of warnings."""
    warnings = 0
    for (name, params), idle_ns in sorted(current.items()):
        pdict = dict(params)
        if pdict.get("instrumentation") != "idle":
            continue
        if pdict.get("quantile") != "p50":
            continue
        pdict["instrumentation"] = "on"
        on_key = (name, tuple(sorted(pdict.items())))
        on_ns = current.get(on_key)
        if on_ns is None or idle_ns <= 0:
            continue
        overhead = on_ns / idle_ns - 1.0
        label = f"{name} p50 instrumentation overhead"
        if overhead > threshold:
            warnings += 1
            print(
                f"::warning::{label}: idle {idle_ns:.0f} -> on {on_ns:.0f} "
                f"ns ({overhead:+.2%}, budget {threshold:.0%})"
            )
        else:
            print(
                f"ok: {label} {overhead:+.2%} (budget {threshold:.0%})"
            )
    return warnings


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--threshold", type=float, default=0.25)
    parser.add_argument("--p50-overhead-threshold", type=float, default=None)
    args = parser.parse_args()

    try:
        current = load(args.current)
    except (OSError, ValueError, KeyError) as err:
        print(f"::error::cannot read bench json: {err}")
        return 1

    # Same-run, same-hardware comparison: works without any baseline.
    if args.p50_overhead_threshold is not None:
        check_instrumentation_overhead(current, args.p50_overhead_threshold)

    if not os.path.exists(args.baseline):
        print(
            f"::notice::no committed baseline at {args.baseline}; "
            "skipping comparison (commit the current BENCH json to start "
            "tracking regressions)"
        )
        return 0

    try:
        baseline = load(args.baseline)
    except (OSError, ValueError, KeyError) as err:
        print(f"::error::cannot read bench json: {err}")
        return 1

    regressions = 0
    for key, base_ns in sorted(baseline.items()):
        cur_ns = current.get(key)
        if cur_ns is None or base_ns <= 0:
            continue
        ratio = cur_ns / base_ns
        name = key[0] + "{" + ", ".join(f"{k}={v}" for k, v in key[1]) + "}"
        if ratio > 1.0 + args.threshold:
            regressions += 1
            print(
                f"::warning::bench regression: {name} "
                f"{base_ns:.0f} -> {cur_ns:.0f} ns/op ({ratio:.2f}x)"
            )
        else:
            print(f"ok: {name} {base_ns:.0f} -> {cur_ns:.0f} ns/op ({ratio:.2f}x)")
    missing = sorted(set(baseline) - set(current))
    for key in missing:
        print(f"::warning::bench entry missing from current run: {key[0]}")
    print(f"{regressions} regression(s) beyond {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
