#!/usr/bin/env python3
"""Warn when bench wall-times regress versus a committed baseline.

Usage:
  check_bench_regression.py --baseline bench/baselines/BENCH_pipeline.json \
      --current BENCH_pipeline.json [--threshold 0.25]

Entries are matched by (name, params). A current ns_per_op more than
`threshold` above the baseline emits a GitHub Actions ::warning::
annotation. Advisory by design: CI hardware differs from the machine
that recorded the baseline, so regressions warn instead of failing; the
exit code is non-zero only for malformed input. A bench whose baseline
was never committed (a brand-new bench, or a fork without baselines)
prints an advisory note and exits 0 — missing history must not block
the run that would create it.

With --p50-overhead-threshold F, additionally compares WITHIN the
current file: every (name, params, quantile=p50) pair that differs
only in instrumentation=idle vs instrumentation=on. An instrumented
p50 more than F above its idle twin warns — both measurements come
from the same run on the same hardware, so this comparison is immune
to the cross-machine noise that keeps the baseline check advisory.

With --serve-anti-scaling, additionally HARD-FAILS (exit 1) when the
current file's serve_query_batch cache=off ns_per_op at the highest
benched thread count that the runner actually has cores for exceeds
the 1-thread figure. Adding threads making the serve path slower is
the anti-scaling bug this repo already shipped once; like the p50
check this is current-file-only, so it is exact on any runner. The
runner's parallelism is read from the bench's own serve_env row
(hardware_threads param); the gate skips, loudly, when that row is
missing or the runner has a single core. serve_env rows describe the
runner, not the code, and are excluded from baseline comparison.
"""

import argparse
import json
import os
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for entry in doc.get("benchmarks", []):
        key = (entry["name"], tuple(sorted(entry.get("params", {}).items())))
        out[key] = float(entry["ns_per_op"])
    return out


def check_instrumentation_overhead(current, threshold):
    """Warns when instrumentation=on p50 exceeds its idle twin by more
    than `threshold` (a fraction). Returns the number of warnings."""
    warnings = 0
    for (name, params), idle_ns in sorted(current.items()):
        pdict = dict(params)
        if pdict.get("instrumentation") != "idle":
            continue
        if pdict.get("quantile") != "p50":
            continue
        pdict["instrumentation"] = "on"
        on_key = (name, tuple(sorted(pdict.items())))
        on_ns = current.get(on_key)
        if on_ns is None or idle_ns <= 0:
            continue
        overhead = on_ns / idle_ns - 1.0
        label = f"{name} p50 instrumentation overhead"
        if overhead > threshold:
            warnings += 1
            print(
                f"::warning::{label}: idle {idle_ns:.0f} -> on {on_ns:.0f} "
                f"ns ({overhead:+.2%}, budget {threshold:.0%})"
            )
        else:
            print(
                f"ok: {label} {overhead:+.2%} (budget {threshold:.0%})"
            )
    return warnings


def check_serve_anti_scaling(current):
    """Hard gate: cache-off serve throughput must not degrade between 1
    thread and the highest benched thread count the runner can actually
    run in parallel. Returns 0 (ok/skip) or 1 (gate tripped)."""
    hardware = None
    cold = {}
    for (name, params) in current:
        pdict = dict(params)
        if name == "serve_env" and "hardware_threads" in pdict:
            hardware = int(pdict["hardware_threads"])
        elif name == "serve_query_batch" and pdict.get("cache") == "off":
            cold[int(pdict["threads"])] = current[(name, params)]
    if hardware is None:
        print(
            "::notice::serve anti-scaling gate skipped: no serve_env "
            "row in the current bench json"
        )
        return 0
    eligible = [t for t in cold if t <= hardware]
    if 1 not in cold or not eligible or max(eligible) <= 1:
        print(
            f"::notice::serve anti-scaling gate skipped: runner has "
            f"{hardware} hardware thread(s)"
        )
        return 0
    t_max = max(eligible)
    one_ns, top_ns = cold[1], cold[t_max]
    if top_ns > one_ns:
        print(
            f"::error::serve anti-scaling: cache=off {top_ns:.0f} ns/op "
            f"at {t_max} threads vs {one_ns:.0f} ns/op at 1 thread "
            f"({top_ns / one_ns:.2f}x) — more threads made serving slower"
        )
        return 1
    print(
        f"ok: serve cache=off scaling 1 -> {t_max} threads: "
        f"{one_ns:.0f} -> {top_ns:.0f} ns/op ({one_ns / top_ns:.2f}x faster)"
    )
    return 0


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--threshold", type=float, default=0.25)
    parser.add_argument("--p50-overhead-threshold", type=float, default=None)
    parser.add_argument("--serve-anti-scaling", action="store_true")
    args = parser.parse_args()

    try:
        current = load(args.current)
    except (OSError, ValueError, KeyError) as err:
        print(f"::error::cannot read bench json: {err}")
        return 1

    # Same-run, same-hardware comparisons: work without any baseline.
    if args.p50_overhead_threshold is not None:
        check_instrumentation_overhead(current, args.p50_overhead_threshold)
    if args.serve_anti_scaling:
        if check_serve_anti_scaling(current):
            return 1

    if not os.path.exists(args.baseline):
        print(
            f"::notice::no committed baseline at {args.baseline}; "
            "skipping comparison (commit the current BENCH json to start "
            "tracking regressions)"
        )
        return 0

    try:
        baseline = load(args.baseline)
    except (OSError, ValueError, KeyError) as err:
        print(f"::error::cannot read bench json: {err}")
        return 1

    regressions = 0
    for key, base_ns in sorted(baseline.items()):
        if key[0] == "serve_env":
            continue  # describes the runner, not the code
        cur_ns = current.get(key)
        if cur_ns is None or base_ns <= 0:
            continue
        ratio = cur_ns / base_ns
        name = key[0] + "{" + ", ".join(f"{k}={v}" for k, v in key[1]) + "}"
        if ratio > 1.0 + args.threshold:
            regressions += 1
            print(
                f"::warning::bench regression: {name} "
                f"{base_ns:.0f} -> {cur_ns:.0f} ns/op ({ratio:.2f}x)"
            )
        else:
            print(f"ok: {name} {base_ns:.0f} -> {cur_ns:.0f} ns/op ({ratio:.2f}x)")
    missing = sorted(set(baseline) - set(current))
    for key in missing:
        if key[0] == "serve_env":
            continue
        print(f"::warning::bench entry missing from current run: {key[0]}")
    print(f"{regressions} regression(s) beyond {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
