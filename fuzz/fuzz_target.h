#ifndef QIKEY_FUZZ_FUZZ_TARGET_H_
#define QIKEY_FUZZ_FUZZ_TARGET_H_

// Shared shape of the repo's fuzz targets. Each target .cc defines:
//
//   extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t n);
//   std::vector<std::string> FuzzSeedInputs();   // valid payloads, built
//                                                // programmatically
//
// With QIKEY_LIBFUZZER=ON (clang only) the target links against
// -fsanitize=fuzzer and libFuzzer drives it from a corpus. Otherwise
// fuzz_driver_main.cc supplies a main() that replays the seeds and a
// deterministic mutation schedule over them — no corpus files to check
// in, no toolchain dependency, same crash-or-pass contract — sized by a
// per-target iteration budget so CI stays fast.

#include <cstdint>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

/// Valid example payloads for the target's input format; the mutation
/// driver uses them as the corpus seeds.
std::vector<std::string> FuzzSeedInputs();

#endif  // QIKEY_FUZZ_FUZZ_TARGET_H_
