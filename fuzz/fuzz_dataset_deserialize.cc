// Fuzz target: `DeserializeDataset` must return a Status — never crash,
// overflow, or over-allocate — on arbitrary bytes.

#include <string_view>

#include "data/column.h"
#include "data/dataset.h"
#include "data/serialize.h"
#include "fuzz_target.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view bytes(reinterpret_cast<const char*>(data), size);
  qikey::Result<qikey::Dataset> dataset = qikey::DeserializeDataset(bytes);
  if (dataset.ok()) {
    // A payload that decodes must also be internally consistent enough
    // to use: touch every cell and re-serialize.
    for (size_t j = 0; j < dataset->num_attributes(); ++j) {
      for (size_t i = 0; i < dataset->num_rows(); ++i) {
        (void)dataset->code(static_cast<qikey::RowIndex>(i),
                            static_cast<qikey::AttributeIndex>(j));
      }
    }
    (void)qikey::SerializeDataset(*dataset);
  }
  return 0;
}

std::vector<std::string> FuzzSeedInputs() {
  using namespace qikey;
  std::vector<std::string> seeds;
  // A plain coded dataset.
  {
    std::vector<Column> columns;
    columns.emplace_back(std::vector<ValueCode>{0, 1, 2, 1});
    columns.emplace_back(std::vector<ValueCode>{3, 3, 0, 2});
    seeds.push_back(
        SerializeDataset(Dataset(Schema::Anonymous(2), std::move(columns))));
  }
  // A dataset with dictionaries and names (the CSV-loaded shape).
  {
    Dictionary dict_a, dict_b;
    std::vector<ValueCode> a = {dict_a.GetOrAdd("x"), dict_a.GetOrAdd("y"),
                                dict_a.GetOrAdd("x")};
    std::vector<ValueCode> b = {dict_b.GetOrAdd("1"), dict_b.GetOrAdd("2"),
                                dict_b.GetOrAdd("3")};
    std::vector<Column> columns;
    columns.emplace_back(std::move(a), 0,
                         std::make_shared<Dictionary>(std::move(dict_a)));
    columns.emplace_back(std::move(b), 0,
                         std::make_shared<Dictionary>(std::move(dict_b)));
    seeds.push_back(SerializeDataset(
        Dataset(Schema({"name", "value"}), std::move(columns))));
  }
  seeds.push_back("");  // trivially truncated
  return seeds;
}
