// Fuzz target: `DeserializeShardArtifact` must return a Status — never
// crash, overflow, or over-allocate — on arbitrary bytes.

#include <string_view>

#include "data/column.h"
#include "fuzz_target.h"
#include "shard/shard_artifact.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view bytes(reinterpret_cast<const char*>(data), size);
  qikey::Result<qikey::ShardFilterArtifact> artifact =
      qikey::DeserializeShardArtifact(bytes);
  if (artifact.ok()) {
    // Decoded payloads must survive a serialize round trip.
    (void)qikey::SerializeShardArtifact(*artifact);
    (void)artifact->MemoryBytes();
  }
  return 0;
}

std::vector<std::string> FuzzSeedInputs() {
  using namespace qikey;
  auto make_dataset = [](std::vector<std::vector<ValueCode>> cols) {
    std::vector<Column> columns;
    for (auto& codes : cols) columns.emplace_back(std::move(codes));
    Schema schema = Schema::Anonymous(columns.size());
    return Dataset(std::move(schema), std::move(columns));
  };

  std::vector<std::string> seeds;
  // Tuple-backend artifact.
  {
    ShardFilterArtifact artifact;
    artifact.shard_index = 0;
    artifact.first_row = 0;
    artifact.rows_seen = 4;
    artifact.backend = FilterBackend::kTupleSample;
    artifact.tuple_sample = make_dataset({{0, 1, 2}, {3, 0, 1}});
    artifact.provenance = {0, 2, 3};
    seeds.push_back(SerializeShardArtifact(artifact));
  }
  // Pair-backend artifact (MX/bitset shape: tuple sample + pair table).
  {
    ShardFilterArtifact artifact;
    artifact.shard_index = 1;
    artifact.first_row = 4;
    artifact.rows_seen = 6;
    artifact.backend = FilterBackend::kBitset;
    artifact.tuple_sample = make_dataset({{1, 1}, {0, 2}});
    artifact.provenance = {4, 6};
    artifact.pair_table = make_dataset({{0, 1, 1, 2}, {2, 2, 0, 1}});
    seeds.push_back(SerializeShardArtifact(artifact));
  }
  seeds.push_back("QIKS");  // magic-only prefix
  return seeds;
}
