// Fuzz target: the quote-aware CSV machinery — `CsvRecordScanner` byte
// feeding and full `ParseCsv` — must never crash on arbitrary bytes,
// and the scanner's record boundaries must be self-consistent with the
// parser's quoting rules.

#include <string_view>

#include "fuzz_target.h"
#include "util/csv.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);
  qikey::CsvOptions options;
  // Feed every byte through the incremental scanner.
  qikey::CsvRecordScanner scanner(options);
  size_t records = 0;
  for (char c : text) {
    if (scanner.Feed(c)) ++records;
    (void)scanner.record_blank();
    (void)scanner.in_quotes();
  }
  // Full parse; on success, round-trip the table through WriteCsv.
  qikey::Result<qikey::CsvTable> table = qikey::ParseCsv(text, options);
  if (table.ok()) {
    (void)qikey::WriteCsv(*table, options);
  }
  // Alternate delimiters exercise the option paths.
  qikey::CsvOptions semicolon;
  semicolon.delimiter = ';';
  semicolon.has_header = false;
  (void)qikey::ParseCsv(text, semicolon);
  return 0;
}

std::vector<std::string> FuzzSeedInputs() {
  return {
      "a,b,c\n1,2,3\n4,5,6\n",
      "name,quote\n\"smith, john\",\"to be,\nor not\"\n\"poe\",\"the "
      "\"\"raven\"\"\"\n",
      "x;y;z\n1;2;3\n",
      "one\n\n\ntwo\n",
      "\"unterminated,quote\nnext,line\n",
      ",,,\n,,,\n",
  };
}
