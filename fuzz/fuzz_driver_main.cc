// Seeded-corpus fallback driver (used when libFuzzer is unavailable):
// replays every seed input verbatim, then runs a deterministic mutation
// schedule — byte flips, truncations, insertions, and two-seed splices
// drawn from a fixed-seed xorshift — against the target. Any crash or
// sanitizer report fails the binary; output is one summary line.
//
//   ./fuzz_<target> [iterations] [seed]
//
// Set QIKEY_FUZZ_DUMP=<path> to write each input to <path> before it
// runs; after a crash the file holds the offending bytes.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "fuzz_target.h"
#include "util/flag_parse.h"

namespace {

uint64_t XorShift(uint64_t* state) {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return *state = x;
}

std::string Mutate(const std::vector<std::string>& seeds, uint64_t* rng) {
  std::string input = seeds[XorShift(rng) % seeds.size()];
  switch (XorShift(rng) % 5) {
    case 0:  // truncate
      if (!input.empty()) input.resize(XorShift(rng) % input.size());
      break;
    case 1:  // flip bytes
      for (int i = 0; i < 4 && !input.empty(); ++i) {
        input[XorShift(rng) % input.size()] =
            static_cast<char>(XorShift(rng));
      }
      break;
    case 2: {  // insert garbage
      size_t pos = input.empty() ? 0 : XorShift(rng) % input.size();
      size_t len = XorShift(rng) % 9;
      std::string garbage;
      for (size_t i = 0; i < len; ++i) {
        garbage.push_back(static_cast<char>(XorShift(rng)));
      }
      input.insert(pos, garbage);
      break;
    }
    case 3: {  // splice two seeds
      const std::string& other = seeds[XorShift(rng) % seeds.size()];
      size_t cut_a = input.empty() ? 0 : XorShift(rng) % input.size();
      size_t cut_b = other.empty() ? 0 : XorShift(rng) % other.size();
      input = input.substr(0, cut_a) + other.substr(cut_b);
      break;
    }
    default: {  // pure noise
      size_t len = XorShift(rng) % 64;
      input.clear();
      for (size_t i = 0; i < len; ++i) {
        input.push_back(static_cast<char>(XorShift(rng)));
      }
      break;
    }
  }
  return input;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t iterations = 20000;
  uint64_t rng = 0x9E3779B9;
  if (argc > 1 && !qikey::ParseUint64Flag("iterations", argv[1], &iterations)) {
    return 2;
  }
  if (argc > 2 && !qikey::ParseUint64Flag("seed", argv[2], &rng)) {
    return 2;
  }
  if (rng == 0) rng = 1;

  std::vector<std::string> seeds = FuzzSeedInputs();
  if (seeds.empty()) {
    std::fprintf(stderr, "target provided no seed inputs\n");
    return 1;
  }
  for (const std::string& seed : seeds) {
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(seed.data()),
                           seed.size());
  }
  const char* dump_path = std::getenv("QIKEY_FUZZ_DUMP");
  for (uint64_t i = 0; i < iterations; ++i) {
    std::string input = Mutate(seeds, &rng);
    if (dump_path != nullptr) {
      std::FILE* f = std::fopen(dump_path, "wb");
      if (f != nullptr) {
        std::fwrite(input.data(), 1, input.size(), f);
        std::fclose(f);
      }
    }
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(input.data()),
                           input.size());
  }
  std::printf("ok: %llu seed(s) + %llu mutated input(s), no crash\n",
              static_cast<unsigned long long>(seeds.size()),
              static_cast<unsigned long long>(iterations));
  return 0;
}
