// Fuzz target: QSNP1 snapshot loading must return a Status — never
// crash, over-allocate, or create a wild borrowed pointer — on
// arbitrary bytes. `SnapshotFromOwnedBytes` runs the exact validation
// path the mmap reader runs (same layout parse, same borrowed-view
// construction), just over a copied buffer.

#include <string_view>

#include "core/attribute_set.h"
#include "engine/pipeline.h"
#include "fuzz_target.h"
#include "serve/snapshot.h"
#include "snapfile/snapfile.h"
#include "util/rng.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace qikey;
  std::string_view bytes(reinterpret_cast<const char*>(data), size);
  Result<ServeSnapshot> snapshot = snapfile::SnapshotFromOwnedBytes(bytes);
  if (snapshot.ok()) {
    // An image that validates must be servable: touch the sample, run
    // the filter over the full attribute set, and re-serialize (which
    // walks every component again).
    size_t m = snapshot->schema().num_attributes();
    AttributeSet all(m);
    for (size_t j = 0; j < m; ++j) {
      all.Add(static_cast<AttributeIndex>(j));
    }
    (void)snapshot->filter->Query(all);
    for (size_t j = 0; j < m; ++j) {
      for (size_t i = 0; i < snapshot->sample->num_rows(); ++i) {
        (void)snapshot->sample->code(static_cast<RowIndex>(i),
                                     static_cast<AttributeIndex>(j));
      }
    }
    (void)snapfile::SerializeSnapshot(*snapshot);
  }
  return 0;
}

std::vector<std::string> FuzzSeedInputs() {
  using namespace qikey;
  std::vector<std::string> seeds;
  // One tiny but fully populated snapshot per filter backend, so the
  // mutation schedule explores every section kind (pair codes, packed
  // evidence, nested sample blob) from a valid starting point.
  std::vector<Column> columns;
  columns.emplace_back(std::vector<ValueCode>{0, 1, 2, 3, 4, 5, 6, 7});
  columns.emplace_back(std::vector<ValueCode>{0, 1, 0, 1, 0, 1, 0, 1});
  columns.emplace_back(std::vector<ValueCode>{0, 0, 1, 1, 2, 2, 0, 1});
  Dataset data(Schema({"id", "par", "grp"}), std::move(columns));
  for (FilterBackend backend : {FilterBackend::kTupleSample,
                                FilterBackend::kMxPair,
                                FilterBackend::kBitset}) {
    PipelineOptions options;
    options.eps = 0.01;
    options.backend = backend;
    Rng rng(5);
    auto result = DiscoveryPipeline(options).Run(data, &rng);
    if (!result.ok()) continue;
    auto snapshot = SnapshotFromPipelineResult(*result, options.eps);
    if (!snapshot.ok()) continue;
    auto image = snapfile::SerializeSnapshot(*snapshot);
    if (image.ok()) seeds.push_back(std::move(*image));
  }
  seeds.push_back("QSNP1");  // truncated magic
  seeds.push_back("");
  return seeds;
}
