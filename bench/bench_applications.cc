// Application-layer benchmarks: the paper's §"Further applications"
// (privacy auditing, dependency discovery, masking) exercised at
// realistic scale on Adult-like data, contrasting the full-data and
// tuple-sampled (m/sqrt(eps)) regimes.

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "core/afd.h"
#include "core/anonymity.h"
#include "core/key_enumeration.h"
#include "core/masking.h"
#include "core/sample_bounds.h"
#include "core/separation.h"
#include "data/generators/tabular.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

namespace qikey {
namespace {

Dataset SampleOf(const Dataset& d, uint64_t r, Rng* rng) {
  r = std::min<uint64_t>(r, d.num_rows());
  std::vector<uint64_t> chosen = rng->SampleWithoutReplacement(d.num_rows(), r);
  std::vector<RowIndex> rows(chosen.begin(), chosen.end());
  return d.SelectRows(rows);
}

void EnumerationBench(const Dataset& d, double eps, Rng* rng) {
  std::printf("(a) Minimal eps-key (UCC) enumeration, eps=%g, max size 3\n",
              eps);
  KeyEnumerationOptions opts;
  opts.eps = eps;
  opts.max_size = 3;

  Timer full_timer;
  auto full = EnumerateMinimalKeys(d, opts);
  double full_s = full_timer.ElapsedSeconds();
  QIKEY_CHECK(full.ok());

  uint64_t r = TupleSampleSizePaper(
      static_cast<uint32_t>(d.num_attributes()), eps);
  Dataset sample = SampleOf(d, r, rng);
  Timer sample_timer;
  auto sampled = EnumerateMinimalKeys(sample, opts);
  double sample_s = sample_timer.ElapsedSeconds();
  QIKEY_CHECK(sampled.ok());

  // How many sampled discoveries are genuine eps-keys of the full data?
  int verified = 0;
  for (const AttributeSet& key : *sampled) {
    verified += IsEpsSeparationKey(d, key, eps) ? 1 : 0;
  }
  std::printf("  full data  (n=%zu): %zu keys in %.3fs\n", d.num_rows(),
              full->size(), full_s);
  std::printf("  sample (r=%" PRIu64 "):   %zu keys in %.3fs, %d/%zu verify "
              "on full data (%.0fx faster)\n",
              r, sampled->size(), sample_s, verified, sampled->size(),
              full_s / std::max(sample_s, 1e-9));
}

void MaskingBench(const Dataset& d, double eps, Rng* rng) {
  std::printf("\n(b) Masking quasi-identifiers, eps=%g\n", eps);
  Timer sample_timer;
  MaskingOptions opts;
  opts.eps = eps;
  auto masked = FindMaskingSet(d, opts, rng);
  double sample_s = sample_timer.ElapsedSeconds();
  QIKEY_CHECK(masked.ok());
  AttributeSet remaining =
      AttributeSet::All(d.num_attributes()).Difference(masked->masked);
  std::printf("  sampled greedy: mask %zu attrs in %.3fs; released set "
              "separates %.4f%% of ALL pairs (target <= %.4f%%)\n",
              masked->masked.size(), sample_s,
              100.0 * SeparationRatio(d, remaining),
              100.0 * (1.0 - eps));
}

void AfdBench(const Dataset& d, Rng* rng) {
  std::printf("\n(c) Approximate FD discovery: minimal X -> education_num, "
              "conditional error <= 0.05\n");
  int rhs = d.schema().Find("education_num");
  QIKEY_CHECK(rhs >= 0);
  Timer full_timer;
  auto full = DiscoverMinimalAfds(d, static_cast<AttributeIndex>(rhs), 0.05,
                                  3);
  double full_s = full_timer.ElapsedSeconds();
  QIKEY_CHECK(full.ok());
  std::printf("  full data: %zu minimal dependencies in %.3fs\n",
              full->size(), full_s);

  uint64_t r = 4000;
  Dataset sample = SampleOf(d, r, rng);
  Timer sample_timer;
  auto sampled = DiscoverMinimalAfds(
      sample, static_cast<AttributeIndex>(rhs), 0.05, 3);
  double sample_s = sample_timer.ElapsedSeconds();
  QIKEY_CHECK(sampled.ok());
  std::printf("  sample (r=%" PRIu64 "): %zu dependencies in %.3fs\n", r,
              sampled->size(), sample_s);
}

void AuditBench(const Dataset& d, double eps, Rng* rng) {
  std::printf("\n(d) End-to-end privacy audit (enumerate on sample, score "
              "on full data), eps=%g\n", eps);
  Timer timer;
  auto report = AuditQuasiIdentifiers(d, eps, 2, rng);
  double secs = timer.ElapsedSeconds();
  QIKEY_CHECK(report.ok());
  std::printf("  %zu quasi-identifiers scored in %.3fs; riskiest:\n",
              report->quasi_identifiers.size(), secs);
  size_t shown = 0;
  for (const QuasiIdentifierRisk& r : report->quasi_identifiers) {
    if (++shown > 3) break;
    std::printf("    %-40s sep=%.6f k-anon=%" PRIu64 " unique=%.1f%%\n",
                r.attrs.ToString(&d.schema()).c_str(), r.separation_ratio,
                r.anonymity_level, 100.0 * r.uniqueness);
  }
}

}  // namespace
}  // namespace qikey

int main() {
  std::printf("Application-layer benchmarks on Adult-like data "
              "(n=32,561, m=14)\n\n");
  qikey::Rng rng(77);
  qikey::Dataset d = qikey::MakeTabular(qikey::AdultLikeSpec(), &rng);
  qikey::EnumerationBench(d, 0.001, &rng);
  qikey::MaskingBench(d, 0.001, &rng);
  qikey::AfdBench(d, &rng);
  qikey::AuditBench(d, 0.001, &rng);
  return 0;
}
