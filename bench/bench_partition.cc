// Ablation for the Appendix B partitioning machinery:
//   (1) per-round gain computation: Algorithm 3's lookup-table buckets
//       (O(r) per attribute) vs sort-based partitioning
//       (O(r log r) per attribute);
//   (2) the data-layer PLI refinement used for exact Γ_A, vs the O(n²)
//       brute-force pair scan it replaces.

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "core/refine_engine.h"
#include "util/thread_pool.h"
#include "data/generators/tabular.h"
#include "data/partition.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

namespace qikey {
namespace {

uint64_t BruteForceGamma(const Dataset& d,
                         const std::vector<AttributeIndex>& attrs) {
  uint64_t count = 0;
  for (RowIndex i = 0; i < d.num_rows(); ++i) {
    for (RowIndex j = i + 1; j < d.num_rows(); ++j) {
      count += d.RowsAgreeOn(i, j, attrs) ? 1 : 0;
    }
  }
  return count;
}

void GainStrategyAblation() {
  std::printf("(1) Greedy gain computation per full round (all m "
              "attributes), CPS-like profile\n");
  std::printf("  %10s %6s %16s %14s %10s\n", "r (sample)", "m",
              "lookup (ms)", "sort (ms)", "speedup");
  Rng rng(31);
  for (uint64_t r : {1000u, 4000u, 12000u}) {
    TabularSpec spec = CpsLikeSpec(r);
    Dataset sample = MakeTabular(spec, &rng);
    const uint32_t m = static_cast<uint32_t>(sample.num_attributes());

    RefineEngine lookup(sample, GainStrategy::kLookupTable);
    RefineEngine sorted(sample, GainStrategy::kSortPartition);
    // Refine once so blocks are non-trivial (the realistic state).
    lookup.Apply(0);
    sorted.Apply(0);

    Timer t1;
    uint64_t checksum1 = 0;
    for (AttributeIndex a = 1; a < m; ++a) checksum1 += lookup.GainOf(a);
    double ms_lookup = t1.ElapsedMillis();

    Timer t2;
    uint64_t checksum2 = 0;
    for (AttributeIndex a = 1; a < m; ++a) checksum2 += sorted.GainOf(a);
    double ms_sort = t2.ElapsedMillis();

    QIKEY_CHECK(checksum1 == checksum2) << "strategies disagree";
    std::printf("  %10" PRIu64 " %6u %16.2f %14.2f %9.2fx\n", r, m,
                ms_lookup, ms_sort, ms_sort / std::max(ms_lookup, 1e-9));
  }
  std::printf("\n");
}

void ParallelGreedyAblation() {
  std::printf("(3) Full greedy run, serial vs thread pool "
              "(CPS-like profile, lookup gains)\n");
  std::printf("  %10s %6s %14s %14s %10s\n", "r (sample)", "m",
              "serial (ms)", "8 threads (ms)", "speedup");
  Rng rng(33);
  ThreadPool pool(8);
  for (uint64_t r : {2000u, 8000u}) {
    TabularSpec spec = CpsLikeSpec(r);
    Dataset sample = MakeTabular(spec, &rng);

    RefineEngine serial(sample);
    Timer t1;
    auto r1 = serial.RunGreedy();
    double ms_serial = t1.ElapsedMillis();

    RefineEngine parallel(sample);
    parallel.set_thread_pool(&pool);
    Timer t2;
    auto r2 = parallel.RunGreedy();
    double ms_parallel = t2.ElapsedMillis();

    QIKEY_CHECK(r1.chosen == r2.chosen) << "parallel result diverged";
    std::printf("  %10" PRIu64 " %6zu %14.1f %14.1f %9.2fx\n", r,
                sample.num_attributes(), ms_serial, ms_parallel,
                ms_serial / std::max(ms_parallel, 1e-9));
  }
  std::printf("\n");
}

void PartitionVsBruteForce() {
  std::printf("(2) Exact Γ_A: PLI refinement vs O(n²) pair scan "
              "(m=6 mixed-cardinality attrs)\n");
  std::printf("  %10s %16s %16s %12s\n", "n", "PLI (ms)", "pairscan (ms)",
              "speedup");
  Rng rng(32);
  for (uint64_t n : {2000u, 8000u, 20000u}) {
    TabularSpec spec;
    spec.num_rows = n;
    spec.attributes = {{"a", 4, 0.5, -1, 0.0},  {"b", 16, 0.7, -1, 0.0},
                       {"c", 3, 0.2, -1, 0.0},  {"d", 64, 0.9, -1, 0.0},
                       {"e", 7, 0.0, -1, 0.0},  {"f", 128, 0.3, -1, 0.0}};
    Dataset d = MakeTabular(spec, &rng);
    std::vector<AttributeIndex> attrs{0, 1, 2, 3};

    Timer t1;
    uint64_t g1 = CountUnseparatedPairs(d, attrs);
    double ms_pli = t1.ElapsedMillis();

    Timer t2;
    uint64_t g2 = BruteForceGamma(d, attrs);
    double ms_brute = t2.ElapsedMillis();

    QIKEY_CHECK(g1 == g2);
    std::printf("  %10" PRIu64 " %16.2f %16.2f %11.0fx\n", n, ms_pli,
                ms_brute, ms_brute / std::max(ms_pli, 1e-9));
  }
  std::printf("\nReading: the lookup-table gain is what makes the full "
              "greedy O(m^3/sqrt(eps))\ninstead of carrying an extra log "
              "factor; PLI makes exact verification practical.\n");
}

}  // namespace
}  // namespace qikey

int main() {
  std::printf("Partition-refinement ablations (Appendix B, Algorithm 3)\n\n");
  qikey::GainStrategyAblation();
  qikey::ParallelGreedyAblation();
  qikey::PartitionVsBruteForce();
  return 0;
}
