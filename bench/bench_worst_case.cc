// Numeric companion to the KKT analysis (Lemmas 1 & 2, Appendix C.3):
// searches the two-value profile family for the clique-size profile
// maximizing the non-collision probability, compares it against the
// "uniform intuition" profile and the paper's witness profile (Eq. 5),
// and verifies that at r = Θ(m/√ε) even the worst case collides w.h.p.

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "core/sample_bounds.h"
#include "math/collision.h"
#include "math/kkt.h"
#include "math/sympoly.h"

namespace qikey {
namespace {

void C3Reproduction() {
  std::printf("(a) Appendix C.3 counterexample (n=40, eps'=1/16, r=10)\n");
  std::vector<double> s1(16, 2.5);
  std::vector<double> s2{10.0};
  s2.insert(s2.end(), 30, 1.0);
  double f1 = ElementarySymmetric(s1, 10);
  double f2 = ElementarySymmetric(s2, 10);
  std::printf("  f(s1 = 2.5 x16)        = %.2f   (paper: 76370239.25)\n", f1);
  std::printf("  f(s2 = (10, 1 x30))    = %.0f    (paper: 173116515)\n", f2);
  std::printf("  -> uniform profile is NOT the non-collision maximizer "
              "(f(s1) < f(s2)).\n\n");
}

void WorstCaseSweep() {
  std::printf("(b) Worst-case two-value profiles and their non-collision "
              "probability\n");
  std::printf("  %6s %8s %6s | %22s %20s %22s\n", "n", "eps", "r",
              "P_nc(uniform-intuit)", "P_nc(paper Eq.5)",
              "P_nc(searched worst)");
  for (uint64_t n : {1000u, 10000u}) {
    for (double eps : {0.04, 0.01}) {
      for (uint64_t r_mult : {1u, 2u}) {
        uint32_t m = 8;
        uint64_t r = r_mult * TupleSampleSizePaper(m, eps);
        TwoValueProfile uni = UniformIntuitionProfile(n, eps);
        double p_uni = std::exp(LogNonCollisionWithReplacementTwoValue(
            uni.a, uni.ka, uni.b, uni.kb, r));
        TwoValueProfile tilde = PaperTildeProfile(n, eps);
        double p_tilde = std::exp(LogNonCollisionWithReplacementTwoValue(
            tilde.a, tilde.ka, tilde.b, tilde.kb, r));
        TwoValueProfile best = FindWorstCaseProfile(n, eps, r, 48);
        std::printf("  %6" PRIu64 " %8g %6" PRIu64
                    " | %22.3e %20.3e %22.3e\n",
                    n, eps, r, p_uni, p_tilde,
                    std::exp(best.log_non_collision));
      }
    }
  }
  std::printf("  -> the searched worst case tracks the paper's Eq. 5 "
              "witness (one big clique + singletons),\n     and doubling "
              "r beyond m/sqrt(eps) crushes even the worst case — "
              "Lemma 2's claim.\n\n");
}

void DetectionAtPaperBudget() {
  std::printf("(c) Worst-case non-collision at the paper budget "
              "r = C*m/sqrt(eps)\n");
  std::printf("  %6s %8s %6s %10s %26s\n", "m", "eps", "C", "r",
              "worst-case P_no-collision");
  const uint64_t n = 100000;
  for (uint32_t m : {8u, 16u}) {
    for (double eps : {0.01, 0.001}) {
      for (uint32_t c_mult : {1u, 4u, 8u}) {
        uint64_t r = c_mult * TupleSampleSizePaper(m, eps);
        TwoValueProfile best = FindWorstCaseProfile(n, eps, r, 32);
        std::printf("  %6u %8g %6u %10" PRIu64 " %26.3e  (target e^-m = "
                    "%.1e)\n",
                    m, eps, c_mult, r, std::exp(best.log_non_collision),
                    std::exp(-static_cast<double>(m)));
      }
    }
  }
  std::printf("  -> a constant multiple of m/sqrt(eps) pushes the worst "
              "case below e^{-m}: Theorem 1's\n     sample size is "
              "sufficient, with the constant absorbed as the paper "
              "states.\n");
}

}  // namespace
}  // namespace qikey

int main() {
  std::printf("KKT worst-case profile analysis (Lemmas 1-2, Appendix "
              "C.3)\n\n");
  qikey::C3Reproduction();
  qikey::WorstCaseSweep();
  qikey::DetectionAtPaperBudget();
  return 0;
}
