// Streaming-path benchmarks: one-pass construction throughput of the
// tuple reservoir (this paper) vs the pair reservoirs (Motwani–Xu),
// and the retained-state footprint — quantifying Section 1's remark
// that sampling is streaming-friendly and the space is proportional to
// the number of samples.

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "core/sample_bounds.h"
#include "stream/stream_builder.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

namespace qikey {
namespace {

void ThroughputBench(uint32_t m, uint64_t stream_length, double eps) {
  Schema schema = Schema::Anonymous(m);
  std::vector<uint32_t> cards(m, 1000);
  uint64_t tuple_budget = TupleSampleSizePaper(m, eps);
  uint64_t pair_budget = MxPairSampleSizePaper(m, eps);

  Rng rng(1);
  StreamingTupleFilterBuilder tuples(schema, cards, tuple_budget, &rng);
  StreamingPairFilterBuilder pairs(schema, cards, pair_budget, &rng);

  // Pre-generate the rows so we time the builders, not the generator.
  Rng data_rng(2);
  std::vector<std::vector<ValueCode>> window(1024);
  for (auto& row : window) {
    row.resize(m);
    for (uint32_t j = 0; j < m; ++j) {
      row[j] = static_cast<ValueCode>(data_rng.Uniform(1000));
    }
  }

  Timer t_tuple;
  for (uint64_t i = 0; i < stream_length; ++i) {
    QIKEY_CHECK(tuples.Offer(window[i % window.size()]).ok());
  }
  double tuple_s = t_tuple.ElapsedSeconds();

  Timer t_pair;
  for (uint64_t i = 0; i < stream_length; ++i) {
    QIKEY_CHECK(pairs.Offer(window[i % window.size()]).ok());
  }
  double pair_s = t_pair.ElapsedSeconds();

  auto tuple_filter = std::move(tuples).Finish();
  auto pair_filter = std::move(pairs).Finish();
  QIKEY_CHECK(tuple_filter.ok() && pair_filter.ok());

  std::printf("  %4u %10" PRIu64 " %8g | %8.1f %8.1f | %12" PRIu64
              " %12" PRIu64 "\n",
              m, stream_length, eps,
              static_cast<double>(stream_length) / tuple_s / 1e6,
              static_cast<double>(stream_length) / pair_s / 1e6,
              tuple_filter->MemoryBytes(), pair_filter->MemoryBytes());
}

}  // namespace
}  // namespace qikey

int main() {
  std::printf("One-pass filter construction over a row stream\n\n");
  std::printf("  %4s %10s %8s | %8s %8s | %12s %12s\n", "m", "rows", "eps",
              "Mrow/s**", "Mrow/s*", "bytes(**)", "bytes(*)");
  std::printf("  (** = tuple reservoir, this paper; * = pair reservoirs, "
              "Motwani-Xu)\n");
  qikey::ThroughputBench(8, 2000000, 0.01);
  qikey::ThroughputBench(8, 2000000, 0.001);
  qikey::ThroughputBench(64, 500000, 0.001);
  qikey::ThroughputBench(372, 100000, 0.001);
  std::printf("\nReading: both reservoirs use O(1)-per-quiet-row skip "
              "sampling, but the pair variant\nmust service ~2s·ln(n) "
              "replacements (each copying a row payload) and retain 2s "
              "rows\nversus r = s·sqrt(eps) for the tuple variant — the "
              "sample-size gap of Theorem 1 shows\nup directly as "
              "construction throughput and state size.\n");
  return 0;
}
