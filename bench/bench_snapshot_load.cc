// Instant restart: time-to-serve-ready from a QSNP1 snapshot artifact
// versus re-running discovery from the raw table.
//
//   rebuild: DiscoveryPipeline::Run + SnapshotFromPipelineResult +
//            Publish — what `qikey serve <csv>` does at startup.
//   file:    ReadSnapshotFile (mmap + validate, zero-copy views) +
//            Publish — what `qikey serve --snapshot-file` does.
//
// Both paths end in the same state: a published snapshot a QueryEngine
// can answer from. The bench self-checks that the two snapshots answer
// a mixed workload identically, then asserts the acceptance gate: the
// file path must be >= 10x faster to serve-ready than the rebuild.
//
//   ./bench_snapshot_load [--json PATH] [--rows N]

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.h"
#include "data/generators/tabular.h"
#include "engine/pipeline.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "snapfile/snapfile.h"
#include "util/flag_parse.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

namespace qikey {
namespace {

/// 8-attribute mixed-cardinality table (the serving-tier shape; narrow
/// enough that the pipeline cost is dominated by sampling + greedy, not
/// the bitset kernel).
Dataset MakeTable(uint64_t rows, Rng* rng) {
  TabularSpec spec;
  spec.num_rows = rows;
  for (int j = 0; j < 8; ++j) {
    AttributeSpec attr;
    attr.name = "a";
    attr.name += std::to_string(j);
    attr.cardinality = (j % 2 == 0) ? 1024 : 16;
    if (j % 3 == 1) attr.zipf_exponent = 0.7;
    spec.attributes.push_back(attr);
  }
  return MakeTabular(spec, rng);
}

ServeSnapshot Rebuild(const Dataset& data, double eps) {
  PipelineOptions options;
  options.eps = eps;
  options.backend = FilterBackend::kBitset;
  Rng rng(7);
  auto result = DiscoveryPipeline(options).Run(data, &rng);
  QIKEY_CHECK(result.ok()) << result.status().ToString();
  auto snapshot = SnapshotFromPipelineResult(*result, eps);
  QIKEY_CHECK(snapshot.ok()) << snapshot.status().ToString();
  return std::move(*snapshot);
}

std::vector<QueryRequest> MakeWorkload(size_t m, size_t count) {
  Rng rng(99);
  std::vector<QueryRequest> requests;
  for (size_t i = 0; i < count; ++i) {
    QueryRequest request;
    request.kind = i % 3 == 0 ? QueryKind::kMinKey : QueryKind::kIsKey;
    request.attrs = request.kind == QueryKind::kMinKey
                        ? AttributeSet(m)
                        : AttributeSet::Random(m, 0.4, &rng);
    requests.push_back(std::move(request));
  }
  return requests;
}

std::vector<FilterVerdict> Answers(ServeSnapshot snapshot,
                                   const std::vector<QueryRequest>& work) {
  SnapshotStore store;
  QIKEY_CHECK(store.Publish(std::move(snapshot)).ok());
  QueryEngineOptions options;
  options.cache_capacity = 0;
  QueryEngine engine(&store, options);
  std::vector<FilterVerdict> verdicts;
  for (const QueryResponse& response : engine.ExecuteBatch(work)) {
    verdicts.push_back(response.verdict);
  }
  return verdicts;
}

}  // namespace
}  // namespace qikey

int main(int argc, char** argv) {
  using namespace qikey;

  std::string json_path;
  uint64_t rows = 20000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc) {
      if (!ParseUint64Flag("--rows", argv[++i], &rows)) return 2;
    }
  }
  const double eps = 1e-4;
  const std::string path = "/tmp/qikey_bench_snapshot_load.qsnp";

  Rng rng(2024);
  Dataset data = MakeTable(rows, &rng);
  std::printf("table: %zu rows x %zu attributes\n", data.num_rows(),
              data.num_attributes());

  // The artifact every file-path iteration loads.
  ServeSnapshot built = Rebuild(data, eps);
  Status written = snapfile::WriteSnapshotFile(built, path);
  QIKEY_CHECK(written.ok()) << written.ToString();

  // Answer-transparency: the mmap-loaded snapshot must serve the same
  // verdicts as the freshly built one.
  auto loaded = snapfile::ReadSnapshotFile(path);
  QIKEY_CHECK(loaded.ok()) << loaded.status().ToString();
  std::vector<QueryRequest> workload =
      MakeWorkload(data.num_attributes(), 256);
  QIKEY_CHECK(Answers(std::move(built), workload) ==
              Answers(std::move(*loaded), workload))
      << "file-loaded snapshot diverged from the rebuilt one";

  // Rebuild path: discovery + freeze + publish, per iteration.
  const size_t kRebuildRounds = 5;
  Timer rebuild_timer;
  for (size_t r = 0; r < kRebuildRounds; ++r) {
    SnapshotStore store;
    QIKEY_CHECK(store.Publish(Rebuild(data, eps)).ok());
  }
  double rebuild_ms = rebuild_timer.ElapsedMillis() / kRebuildRounds;

  // File path: mmap + validate + publish, per iteration.
  const size_t kLoadRounds = 100;
  Timer load_timer;
  for (size_t r = 0; r < kLoadRounds; ++r) {
    auto snapshot = snapfile::ReadSnapshotFile(path);
    QIKEY_CHECK(snapshot.ok()) << snapshot.status().ToString();
    SnapshotStore store;
    QIKEY_CHECK(store.Publish(std::move(*snapshot)).ok());
  }
  double load_ms = load_timer.ElapsedMillis() / kLoadRounds;

  double speedup = rebuild_ms / load_ms;
  std::printf("serve-ready: rebuild %10.3f ms   file %10.3f ms   "
              "(%.1fx faster from file)\n",
              rebuild_ms, load_ms, speedup);

  BenchJsonWriter json;
  json.Add("snapshot_serve_ready", {{"path", "rebuild"}},
           rebuild_ms * 1e6, 1e3 / rebuild_ms);
  json.Add("snapshot_serve_ready", {{"path", "file"}},
           load_ms * 1e6, 1e3 / load_ms);
  if (!json.WriteToFile(json_path)) return 1;

  // Acceptance gate: instant restart must actually be instant —
  // an order of magnitude under re-running discovery.
  QIKEY_CHECK(speedup >= 10.0)
      << "file load only " << speedup << "x faster than rebuild";
  std::remove(path.c_str());
  return 0;
}
