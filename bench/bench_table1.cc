// Reproduces Table 1 of "Towards Better Bounds for Finding
// Quasi-Identifiers" (PODS 2023): sample sizes, batch query time over
// ~100 random attribute subsets, and accept/reject agreement between
//   (*)  Motwani–Xu pair-sampling filter  (S = m/eps pairs), and
//   (**) this paper's tuple-sampling filter (S = m/sqrt(eps) tuples),
// on Adult-like, Covtype-like and CPS-like synthetic data (see
// DESIGN.md §5 for the data substitution).
//
// Paper parameters: eps = 0.001, delta = 0.01, ~100 random subsets.

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/mx_pair_filter.h"
#include "core/separation.h"
#include "core/tuple_sample_filter.h"
#include "data/generators/tabular.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

namespace qikey {
namespace {

struct RowResult {
  std::string name;
  uint64_t n = 0;
  uint32_t m = 0;
  uint64_t s_star = 0;        // MX pair count
  uint64_t s_star_star = 0;   // tuple count
  double t_star = 0;          // total query seconds, 100 queries, MX
  double t_star_star = 0;     // total query seconds, 100 queries, tuples
  double t_star_model = 0;    // MX under the paper's O(s·|A|) cost model
  double agreement = 0;       // fraction of agreeing verdicts
  double build_star = 0;
  double build_star_star = 0;
  // Ground-truth scoring (computed on the smaller tables only):
  bool scored = false;
  int errors_star = 0;       // certainty violations by the MX filter
  int errors_star_star = 0;  // ... by the tuple filter
  int gray_zone = 0;         // queries where either answer is correct
};

RowResult RunDataset(const std::string& name, const TabularSpec& spec,
                     double eps, int num_queries, uint64_t seed,
                     bool score_ground_truth) {
  RowResult row;
  row.name = name;
  Rng rng(seed);
  std::fprintf(stderr, "[table1] generating %s (n=%" PRIu64 ", m=%zu)...\n",
               name.c_str(), spec.num_rows, spec.attributes.size());
  Dataset d = MakeTabular(spec, &rng);
  row.n = d.num_rows();
  row.m = static_cast<uint32_t>(d.num_attributes());

  Timer build_mx;
  MxPairFilterOptions mx_opts;
  mx_opts.eps = eps;
  auto mx = MxPairFilter::Build(d, mx_opts, &rng);
  row.build_star = build_mx.ElapsedSeconds();
  QIKEY_CHECK(mx.ok());
  row.s_star = mx->sample_size();

  Timer build_ts;
  TupleSampleFilterOptions ts_opts;
  ts_opts.eps = eps;
  auto ts = TupleSampleFilter::Build(d, ts_opts, &rng);
  row.build_star_star = build_ts.ElapsedSeconds();
  QIKEY_CHECK(ts.ok());
  row.s_star_star = ts->sample_size();

  // ~100 random attribute subsets (each attribute included w.p. 1/2,
  // empty subsets redrawn: the paper queries sets of attributes).
  Rng qrng(seed + 1);
  std::vector<AttributeSet> queries;
  while (queries.size() < static_cast<size_t>(num_queries)) {
    AttributeSet a = AttributeSet::Random(row.m, 0.5, &qrng);
    if (!a.empty()) queries.push_back(std::move(a));
  }

  std::vector<FilterVerdict> v_star(queries.size());
  Timer t_mx;
  for (size_t i = 0; i < queries.size(); ++i) {
    v_star[i] = mx->Query(queries[i]);
  }
  row.t_star = t_mx.ElapsedSeconds();

  std::vector<FilterVerdict> v_star_star(queries.size());
  Timer t_ts;
  for (size_t i = 0; i < queries.size(); ++i) {
    v_star_star[i] = ts->Query(queries[i]);
  }
  row.t_star_star = t_ts.ElapsedSeconds();

  int agree = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    agree += (v_star[i] == v_star_star[i]);
  }
  row.agreement = static_cast<double>(agree) /
                  static_cast<double>(queries.size());

  // The same MX sample under the paper's O(s·|A|) cost model (no early
  // exit per pair) — what the authors' implementation pays per query.
  {
    MxPairFilterOptions model_opts = mx_opts;
    model_opts.exhaustive_compare = true;
    Rng model_rng(seed + 2);
    auto mx_model = MxPairFilter::Build(d, model_opts, &model_rng);
    QIKEY_CHECK(mx_model.ok());
    Timer t_model;
    for (const AttributeSet& q : queries) {
      FilterVerdict v = mx_model->Query(q);
      (void)v;
    }
    row.t_star_model = t_model.ElapsedSeconds();
  }

  if (score_ground_truth) {
    row.scored = true;
    for (size_t i = 0; i < queries.size(); ++i) {
      SeparationClass truth = Classify(d, queries[i], eps);
      if (truth == SeparationClass::kIntermediate) {
        ++row.gray_zone;
        continue;
      }
      FilterVerdict expected = truth == SeparationClass::kKey
                                   ? FilterVerdict::kAccept
                                   : FilterVerdict::kReject;
      row.errors_star += (v_star[i] != expected);
      row.errors_star_star += (v_star_star[i] != expected);
    }
  }
  return row;
}

void PrintTable(const std::vector<RowResult>& rows, double eps,
                int num_queries) {
  std::printf("\nTable 1 reproduction (eps=%g, delta=0.01, %d random "
              "subsets; * = Motwani-Xu pairs, ** = this paper's tuples)\n\n",
              eps, num_queries);
  std::printf("%-10s %10s %5s %10s %9s %11s %11s %6s\n", "Dataset", "n", "m",
              "S(*)", "S(**)", "T(*) sec", "T(**) sec", "A %");
  std::printf("%.90s\n",
              "-----------------------------------------------------------"
              "-------------------------------");
  for (const RowResult& r : rows) {
    std::printf("%-10s %10" PRIu64 " %5u %10" PRIu64 " %9" PRIu64
                " %11.3f %11.3f %5.0f%%\n",
                r.name.c_str(), r.n, r.m, r.s_star, r.s_star_star, r.t_star,
                r.t_star_star, 100.0 * r.agreement);
  }
  std::printf("\nPaper's Table 1 (M1 Pro, real UCI/census data):\n");
  std::printf("  Adult   S*=13,000  S**=411     T*=1.903s   T**=0.208s  A=95%%\n");
  std::printf("  Covtype S*=55,000  S**=1,739   T*=188.02s  T**=2.49s   A=98%%\n");
  std::printf("  CPS     S*=372,000 S**=11,764  T*=790.08s  T**=60.03s  A=100%%\n");
  std::printf("\nShape checks (expected from the theory):\n");
  for (const RowResult& r : rows) {
    std::printf("  %-10s S(*)/S(**) = %6.1f (theory 1/sqrt(eps) = %.1f);"
                "  T(*)/T(**) = %5.1fx (early-exit) / %5.1fx (paper's "
                "O(s|A|) model)\n",
                r.name.c_str(),
                static_cast<double>(r.s_star) /
                    static_cast<double>(r.s_star_star),
                1.0 / std::sqrt(eps),
                r.t_star / std::max(r.t_star_star, 1e-9),
                r.t_star_model / std::max(r.t_star_star, 1e-9));
  }
  std::printf("\nGround-truth scoring (exact classification of every "
              "query):\n");
  for (const RowResult& r : rows) {
    if (!r.scored) {
      std::printf("  %-10s (skipped: exact classification too costly at "
                  "this n)\n", r.name.c_str());
      continue;
    }
    std::printf("  %-10s certainty violations: %d (*), %d (**); gray-zone "
                "queries (either answer correct): %d\n",
                r.name.c_str(), r.errors_star, r.errors_star_star,
                r.gray_zone);
  }
  std::printf("\nBuild (sampling) time: ");
  for (const RowResult& r : rows) {
    std::printf("%s %.2fs/%.2fs  ", r.name.c_str(), r.build_star,
                r.build_star_star);
  }
  std::printf("(* / **)\n");
}

}  // namespace
}  // namespace qikey

int main(int argc, char** argv) {
  const double eps = 0.001;
  const int num_queries = 100;
  // --quick shrinks row counts for smoke runs.
  bool quick = argc > 1 && std::string(argv[1]) == "--quick";

  using qikey::TabularSpec;
  TabularSpec adult = qikey::AdultLikeSpec();
  TabularSpec covtype = qikey::CovtypeLikeSpec();
  TabularSpec cps = qikey::CpsLikeSpec(quick ? 20000 : 150000);
  if (quick) {
    adult.num_rows = 8000;
    covtype.num_rows = 50000;
  }

  std::vector<qikey::RowResult> rows;
  rows.push_back(qikey::RunDataset("Adult", adult, eps, num_queries, 101,
                                   /*score_ground_truth=*/true));
  rows.push_back(qikey::RunDataset("Covtype", covtype, eps, num_queries,
                                   202, /*score_ground_truth=*/false));
  rows.push_back(qikey::RunDataset("CPS", cps, eps, num_queries, 303,
                                   /*score_ground_truth=*/false));
  qikey::PrintTable(rows, eps, num_queries);
  return 0;
}
