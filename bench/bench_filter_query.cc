// Google-benchmark microbenchmarks of the filters' query paths:
//   MX pair filter:      O(s·|A|)           with s = m/eps
//   tuple filter (sort): O(r log r · |A|)   with r = m/sqrt(eps)
//   tuple filter (hash): expected O(r·|A|)
// This regenerates the query-time separation behind Table 1's T columns
// and Theorem 1's query-time claims.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/mx_pair_filter.h"
#include "core/tuple_sample_filter.h"
#include "data/generators/tabular.h"
#include "util/rng.h"

namespace qikey {
namespace {

struct Fixture {
  Dataset dataset;
  std::unique_ptr<MxPairFilter> mx;
  std::unique_ptr<TupleSampleFilter> ts_sort;
  std::unique_ptr<TupleSampleFilter> ts_hash;
  std::vector<AttributeSet> queries;
};

/// One shared data set per eps (covtype-like profile scaled to 100k
/// rows), with both filters and a pool of fixed random queries.
Fixture* GetFixture(double eps, size_t query_size) {
  static std::map<std::pair<double, size_t>, std::unique_ptr<Fixture>> cache;
  auto key = std::make_pair(eps, query_size);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second.get();

  auto fx = std::make_unique<Fixture>();
  Rng rng(2024);
  TabularSpec spec = CovtypeLikeSpec();
  spec.num_rows = 100000;
  fx->dataset = MakeTabular(spec, &rng);
  const size_t m = fx->dataset.num_attributes();

  MxPairFilterOptions mx_opts;
  mx_opts.eps = eps;
  fx->mx = std::make_unique<MxPairFilter>(
      MxPairFilter::Build(fx->dataset, mx_opts, &rng).ValueOrDie());

  TupleSampleFilterOptions ts_opts;
  ts_opts.eps = eps;
  ts_opts.detection = DuplicateDetection::kSort;
  fx->ts_sort = std::make_unique<TupleSampleFilter>(
      TupleSampleFilter::Build(fx->dataset, ts_opts, &rng).ValueOrDie());
  ts_opts.detection = DuplicateDetection::kHash;
  fx->ts_hash = std::make_unique<TupleSampleFilter>(
      TupleSampleFilter::Build(fx->dataset, ts_opts, &rng).ValueOrDie());

  Rng qrng(7);
  for (int i = 0; i < 32; ++i) {
    fx->queries.push_back(AttributeSet::RandomOfSize(m, query_size, &qrng));
  }
  Fixture* out = fx.get();
  cache[key] = std::move(fx);
  return out;
}

double EpsFromRange(int64_t code) { return code == 0 ? 0.01 : 0.001; }

void BM_MxPairQuery(benchmark::State& state) {
  Fixture* fx = GetFixture(EpsFromRange(state.range(0)),
                           static_cast<size_t>(state.range(1)));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx->mx->Query(fx->queries[i++ % fx->queries.size()]));
  }
  state.SetLabel("s=" + std::to_string(fx->mx->sample_size()));
}

void BM_TupleSortQuery(benchmark::State& state) {
  Fixture* fx = GetFixture(EpsFromRange(state.range(0)),
                           static_cast<size_t>(state.range(1)));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx->ts_sort->Query(fx->queries[i++ % fx->queries.size()]));
  }
  state.SetLabel("r=" + std::to_string(fx->ts_sort->sample_size()));
}

void BM_TupleHashQuery(benchmark::State& state) {
  Fixture* fx = GetFixture(EpsFromRange(state.range(0)),
                           static_cast<size_t>(state.range(1)));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx->ts_hash->Query(fx->queries[i++ % fx->queries.size()]));
  }
  state.SetLabel("r=" + std::to_string(fx->ts_hash->sample_size()));
}

// Args: (eps code: 0 -> 0.01, 1 -> 0.001;  |A|)
BENCHMARK(BM_MxPairQuery)
    ->Args({0, 4})
    ->Args({0, 16})
    ->Args({1, 4})
    ->Args({1, 16})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_TupleSortQuery)
    ->Args({0, 4})
    ->Args({0, 16})
    ->Args({1, 4})
    ->Args({1, 16})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_TupleHashQuery)
    ->Args({0, 4})
    ->Args({0, 16})
    ->Args({1, 4})
    ->Args({1, 16})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace qikey

BENCHMARK_MAIN();
