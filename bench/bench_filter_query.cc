// Filter query-path microbenchmarks at m = 64 attributes:
//   MX pair filter:      O(s·|A|)           with s = m/eps pairs
//   tuple filter (sort): O(r log r · |A|)   with r = m/sqrt(eps) tuples
//   tuple filter (hash): expected O(r·|A|)
//   bitset filter:       word-wise AND over packed pair evidence
//
// Part 1 regenerates the per-query separation behind Table 1's T
// columns, now including the packed backend. Part 2 is the batched
// enumeration workload (QueryBatch over a 512-candidate pool): the
// bitset backend must beat the scalar tuple-sample backend by >= 10x
// there — asserted, and recorded in the JSON for CI's baseline check.
// Part 3 forces each evidence-kernel dispatch tier (scalar / avx2 /
// avx512) over the same batch, self-checking bit-identical verdicts;
// the scalar rows double as the differential oracle's timing.
//
//   ./bench_filter_query [--json PATH]

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.h"
#include "core/bitset_filter.h"
#include "core/evidence_block.h"
#include "core/mx_pair_filter.h"
#include "core/tuple_sample_filter.h"
#include "data/generators/tabular.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

namespace qikey {
namespace {

/// A 64-attribute categorical table (survey-like cardinality mix:
/// binary flags through ~10^3-value codes, mild skew) — the regime the
/// tentpole's "64 attributes = one mask word" kernel targets.
Dataset MakeWideTable(uint64_t rows, Rng* rng) {
  TabularSpec spec;
  spec.num_rows = rows;
  for (int j = 0; j < 64; ++j) {
    AttributeSpec attr;
    // += instead of "a" + to_string: gcc 12 -Wrestrict FP (PR105651).
    attr.name = "a";
    attr.name += std::to_string(j);
    switch (j % 4) {
      case 0:
        attr.cardinality = 2;  // indicator
        break;
      case 1:
        attr.cardinality = 8;
        attr.zipf_exponent = 0.8;
        break;
      case 2:
        attr.cardinality = 64;
        attr.zipf_exponent = 0.5;
        break;
      default:
        attr.cardinality = 1024;  // high-cardinality code
        break;
    }
    spec.attributes.push_back(attr);
  }
  return MakeTabular(spec, rng);
}

struct Fixture {
  double eps = 0.0;
  std::unique_ptr<MxPairFilter> mx;
  std::unique_ptr<TupleSampleFilter> ts_sort;
  std::unique_ptr<TupleSampleFilter> ts_hash;
  std::unique_ptr<BitsetSeparationFilter> bitset;
};

Fixture MakeFixture(const Dataset& d, double eps) {
  Fixture fx;
  fx.eps = eps;
  // The bitset filter draws the SAME pairs as the MX filter (shared
  // seed), so their verdicts are bit-identical and the comparison is
  // kernel vs kernel, not sample vs sample.
  Rng mx_rng(2024), bs_rng(2024), ts_rng(77);
  MxPairFilterOptions mx_opts;
  mx_opts.eps = eps;
  fx.mx = std::make_unique<MxPairFilter>(
      MxPairFilter::Build(d, mx_opts, &mx_rng).ValueOrDie());
  BitsetFilterOptions bs_opts;
  bs_opts.eps = eps;
  fx.bitset = std::make_unique<BitsetSeparationFilter>(
      BitsetSeparationFilter::Build(d, bs_opts, &bs_rng).ValueOrDie());

  TupleSampleFilterOptions ts_opts;
  ts_opts.eps = eps;
  ts_opts.detection = DuplicateDetection::kSort;
  fx.ts_sort = std::make_unique<TupleSampleFilter>(
      TupleSampleFilter::Build(d, ts_opts, &ts_rng).ValueOrDie());
  ts_opts.detection = DuplicateDetection::kHash;
  fx.ts_hash = std::make_unique<TupleSampleFilter>(
      TupleSampleFilter::Build(d, ts_opts, &ts_rng).ValueOrDie());
  return fx;
}

std::vector<AttributeSet> MakeQueries(size_t m, size_t query_size,
                                      size_t count, uint64_t seed) {
  Rng qrng(seed);
  std::vector<AttributeSet> queries;
  queries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    queries.push_back(AttributeSet::RandomOfSize(m, query_size, &qrng));
  }
  return queries;
}

std::string FmtEps(double eps) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", eps);
  return buffer;
}

/// Times `rounds` passes of one-Query-per-candidate over the pool.
double SerialNsPerQuery(const SeparationFilter& filter,
                        const std::vector<AttributeSet>& queries,
                        size_t rounds) {
  // One warm pass keeps first-touch page faults out of the clock.
  for (const AttributeSet& q : queries) (void)filter.Query(q);
  Timer timer;
  for (size_t p = 0; p < rounds; ++p) {
    for (const AttributeSet& q : queries) (void)filter.Query(q);
  }
  return timer.ElapsedMillis() * 1e6 / (rounds * queries.size());
}

void BenchSerialQueries(const Fixture& fx, size_t query_size,
                        const std::vector<AttributeSet>& queries,
                        BenchJsonWriter* json) {
  struct Row {
    const char* name;
    const SeparationFilter* filter;
    uint64_t sample;
  };
  const Row rows[] = {
      {"mx-pair", fx.mx.get(), fx.mx->sample_size()},
      {"tuple-sort", fx.ts_sort.get(), fx.ts_sort->sample_size()},
      {"tuple-hash", fx.ts_hash.get(), fx.ts_hash->sample_size()},
      {"bitset", fx.bitset.get(), fx.bitset->sample_size()},
  };
  for (const Row& row : rows) {
    // Slower filters get fewer rounds; the pool is 32 queries either way.
    size_t rounds = fx.eps < 0.005 ? 4 : 16;
    double ns = SerialNsPerQuery(*row.filter, queries, rounds);
    std::printf("  %-11s eps=%-6g |A|=%-3zu %12.1f ns/query  (sample %llu)\n",
                row.name, fx.eps, query_size, ns,
                static_cast<unsigned long long>(row.sample));
    json->Add("filter_query_serial",
              {{"filter", row.name},
               {"eps", FmtEps(fx.eps)},
               {"query_size", std::to_string(query_size)}},
              ns, 1e9 / ns);
  }
}

/// Returns ns/query of `filter.QueryBatch` over the pool (serial, the
/// enumeration workload), verifying the verdicts against `expect`.
double BatchNsPerQuery(const SeparationFilter& filter,
                       const std::vector<AttributeSet>& queries,
                       const std::vector<FilterVerdict>* expect,
                       size_t rounds) {
  std::vector<FilterVerdict> verdicts = filter.QueryBatch(queries, nullptr);
  if (expect != nullptr) QIKEY_CHECK(verdicts == *expect);
  Timer timer;
  for (size_t p = 0; p < rounds; ++p) {
    verdicts = filter.QueryBatch(queries, nullptr);
  }
  return timer.ElapsedMillis() * 1e6 / (rounds * queries.size());
}

/// The acceptance benchmark: batched queries at 64 attributes, bitset
/// vs scalar tuple-sample, identical retained sample. Returns the
/// bitset speedup.
double BenchBatch(const Fixture& fx, size_t query_size,
                  BenchJsonWriter* json) {
  std::vector<AttributeSet> pool = MakeQueries(64, query_size, 512, 99);
  // Same sampled pairs (shared seed) -> the bitset verdicts must equal
  // the scalar MX verdicts; checked inside BatchNsPerQuery.
  std::vector<FilterVerdict> expect = fx.mx->QueryBatch(pool, nullptr);
  size_t rejected = 0;
  for (FilterVerdict v : expect) rejected += v == FilterVerdict::kReject;

  double scalar_ns = BatchNsPerQuery(*fx.ts_sort, pool, nullptr,
                                     fx.eps < 0.005 ? 2 : 8);
  double bitset_ns = BatchNsPerQuery(*fx.bitset, pool, &expect, 24);
  double speedup = scalar_ns / bitset_ns;
  const PackedEvidence& ev = fx.bitset->evidence();
  std::printf(
      "  batch eps=%-6g |A|=%-3zu tuple-sort %10.1f ns/q | bitset %9.1f "
      "ns/q | %6.1fx  (%zu/512 rejected, %llu pairs packed of %llu)\n",
      fx.eps, query_size, scalar_ns, bitset_ns, speedup, rejected,
      static_cast<unsigned long long>(ev.num_pairs()),
      static_cast<unsigned long long>(ev.source_pairs()));
  json->Add("filter_query_batch",
            {{"filter", "tuple-sort"},
             {"eps", FmtEps(fx.eps)},
             {"query_size", std::to_string(query_size)}},
            scalar_ns, 1e9 / scalar_ns);
  json->Add("filter_query_batch",
            {{"filter", "bitset"},
             {"eps", FmtEps(fx.eps)},
             {"query_size", std::to_string(query_size)}},
            bitset_ns, 1e9 / bitset_ns);
  json->Add("filter_query_batch_speedup",
            {{"eps", FmtEps(fx.eps)},
             {"query_size", std::to_string(query_size)}},
            speedup, speedup);
  return speedup;
}

/// Scalar vs SIMD on the SAME filter and pool: forces each dispatch
/// tier in turn, timing the batched kernel and self-checking that every
/// tier reproduces the scalar verdicts bit-for-bit (the scalar path is
/// the differential oracle). Returns best_simd_speedup over scalar, or
/// 1.0 when the CPU has no vector tier.
double BenchKernelTiers(const Fixture& fx, size_t query_size,
                        BenchJsonWriter* json) {
  std::vector<AttributeSet> pool = MakeQueries(64, query_size, 512, 99);
  QIKEY_CHECK(SetEvidenceKernel("scalar").ok());
  std::vector<FilterVerdict> expect = fx.bitset->QueryBatch(pool, nullptr);
  double scalar_ns = BatchNsPerQuery(*fx.bitset, pool, &expect, 24);
  std::printf("  kernel eps=%-6g |A|=%-3zu %-7s %10.1f ns/q\n", fx.eps,
              query_size, "scalar", scalar_ns);
  json->Add("filter_query_kernel",
            {{"kernel", "scalar"},
             {"eps", FmtEps(fx.eps)},
             {"query_size", std::to_string(query_size)}},
            scalar_ns, 1e9 / scalar_ns);
  double best_speedup = 1.0;
  for (const char* kernel : {"avx2", "avx512"}) {
    if (!SetEvidenceKernel(kernel).ok()) continue;  // CPU lacks the tier
    double ns = BatchNsPerQuery(*fx.bitset, pool, &expect, 24);
    double speedup = scalar_ns / ns;
    best_speedup = std::max(best_speedup, speedup);
    std::printf("  kernel eps=%-6g |A|=%-3zu %-7s %10.1f ns/q  %6.2fx over "
                "scalar\n",
                fx.eps, query_size, kernel, ns, speedup);
    json->Add("filter_query_kernel",
              {{"kernel", kernel},
               {"eps", FmtEps(fx.eps)},
               {"query_size", std::to_string(query_size)}},
              ns, 1e9 / ns);
  }
  QIKEY_CHECK(SetEvidenceKernel("auto").ok());
  return best_speedup;
}

}  // namespace
}  // namespace qikey

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  qikey::Rng rng(2024);
  qikey::Dataset d = qikey::MakeWideTable(100000, &rng);
  std::printf("filter query paths: n=%zu m=%zu\n\n", d.num_rows(),
              d.num_attributes());

  qikey::BenchJsonWriter json;
  std::printf("serial Query (32-query pool):\n");
  for (double eps : {0.01, 0.001}) {
    qikey::Fixture fx = qikey::MakeFixture(d, eps);
    for (size_t query_size : {4u, 16u}) {
      std::vector<qikey::AttributeSet> queries =
          qikey::MakeQueries(64, query_size, 32, 7);
      qikey::BenchSerialQueries(fx, query_size, queries, &json);
    }
  }

  std::printf("\nbatched QueryBatch, 512 candidates (the enumeration "
              "workload):\n");
  double min_speedup = 1e30;
  for (double eps : {0.01, 0.001}) {
    qikey::Fixture fx = qikey::MakeFixture(d, eps);
    for (size_t query_size : {8u, 24u}) {
      double speedup = qikey::BenchBatch(fx, query_size, &json);
      if (eps == 0.001) min_speedup = std::min(min_speedup, speedup);
    }
  }

  std::printf("\nevidence-kernel dispatch tiers (512-candidate batch, "
              "active: %s):\n",
              qikey::EvidenceKernelName(qikey::ActiveEvidenceKernel()));
  for (double eps : {0.01, 0.001}) {
    qikey::Fixture fx = qikey::MakeFixture(d, eps);
    for (size_t query_size : {8u, 24u}) {
      (void)qikey::BenchKernelTiers(fx, query_size, &json);
    }
  }

  std::printf("\nReading: the bitset backend answers the same verdicts from "
              "the same sample;\nthe acceptance gate is >= 10x batched "
              "throughput at eps=0.001 (got %.1fx).\n", min_speedup);
  // Persist the measurements BEFORE the fatal gate: when the gate trips
  // on a throttled runner, the uploaded json is the diagnosis.
  if (!json.WriteToFile(json_path)) return 1;
  // The acceptance criterion, raised from the scalar-era 4x once the
  // SIMD tiers landed: the block kernel measures ~42x over tuple-sort
  // at eps=0.001 (30x before vectorization); 10x still leaves margin
  // for throttled CI runners while catching any dispatch regression
  // that silently drops the kernel back below the scalar floor.
  QIKEY_CHECK(min_speedup >= 10.0)
      << "bitset QueryBatch speedup fell below 10x: " << min_speedup;
  return 0;
}
