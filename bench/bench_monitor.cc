// Incremental maintenance vs full rebuild under live updates.
//
// Primes a KeyMonitor with an Adult-like table, then streams an
// insert-heavy update mix through it (the regime the monitor is built
// for: most inserts never touch the retained sample, so they cost
// nothing). The baseline is what a batch system must do to keep the
// minimal-key frontier current: rebuild the filter and re-run levelwise
// enumeration after every update. The bench times a handful of such
// rebuilds and reports the per-update cost of both strategies.
//
//   ./bench_monitor [--rows N] [--updates U] [--max-size K]
//                   [--json PATH]
//
// With --json, machine-readable results are written for CI to archive
// (see bench_json.h).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.h"
#include "core/key_enumeration.h"
#include "core/tuple_sample_filter.h"
#include "data/generators/tabular.h"
#include "monitor/key_monitor.h"
#include "util/flag_parse.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

namespace qikey {
namespace {

std::vector<ValueCode> RowOf(const Dataset& d, RowIndex i) {
  std::vector<ValueCode> row(d.num_attributes());
  for (AttributeIndex j = 0; j < d.num_attributes(); ++j) {
    row[j] = d.code(i, j);
  }
  return row;
}

/// One from-scratch pass: build the paper filter over the current
/// window and re-enumerate the minimal accepted sets.
double TimeFullRebuild(const Dataset& window, uint32_t max_key_size,
                       Rng* rng) {
  Timer timer;
  TupleSampleFilterOptions filter_options;
  filter_options.eps = 0.001;
  auto filter = TupleSampleFilter::Build(window, filter_options, rng);
  QIKEY_CHECK(filter.ok());
  KeyEnumerationOptions enum_options;
  enum_options.max_size = max_key_size;
  auto keys = EnumerateMinimalAcceptedSets(
      *filter, window.num_attributes(), enum_options);
  QIKEY_CHECK(keys.ok());
  return timer.ElapsedMillis();
}

int Run(uint64_t rows, uint64_t updates, uint32_t max_key_size,
        const std::string& json_path) {
  Rng rng(2026);
  TabularSpec spec = AdultLikeSpec();
  spec.num_rows = rows + updates;  // extra rows feed the insert stream
  Dataset table = MakeTabular(spec, &rng);

  std::printf("incremental monitor vs full rebuild: n=%llu m=%zu, %llu "
              "updates (90%% insert / 10%% erase), max key size %u\n",
              static_cast<unsigned long long>(rows), table.num_attributes(),
              static_cast<unsigned long long>(updates), max_key_size);

  MonitorOptions options;
  options.eps = 0.001;
  options.max_key_size = max_key_size;
  auto monitor = KeyMonitor::Make(table.schema(), options, 7);
  QIKEY_CHECK(monitor.ok());

  // Prime the window (not part of the timed update phase).
  std::vector<RowIndex> window_rows;
  for (RowIndex i = 0; i < rows; ++i) {
    QIKEY_CHECK((*monitor)->Insert(RowOf(table, i)).ok());
    window_rows.push_back(i);
  }

  // Timed phase: stream updates through the live monitor.
  Rng update_rng(99);
  Timer timer;
  RowIndex next_insert = static_cast<RowIndex>(rows);
  for (uint64_t u = 0; u < updates; ++u) {
    bool insert = window_rows.size() < 2 || update_rng.Bernoulli(0.9) ||
                  next_insert >= table.num_rows();
    if (insert) {
      QIKEY_CHECK((*monitor)->Insert(RowOf(table, next_insert)).ok());
      window_rows.push_back(next_insert);
      ++next_insert;
    } else {
      size_t victim =
          static_cast<size_t>(update_rng.Uniform(window_rows.size()));
      QIKEY_CHECK(
          (*monitor)->Erase(RowOf(table, window_rows[victim])).ok());
      window_rows[victim] = window_rows.back();
      window_rows.pop_back();
    }
  }
  double incremental_ms = timer.ElapsedMillis();
  double incremental_ns_per_update = incremental_ms * 1e6 / updates;
  double incremental_ups = updates / (incremental_ms * 1e-3);

  auto snapshot = (*monitor)->Snapshot();
  std::printf("  incremental: %10.2f ms total, %10.1f ns/update, %12.1f "
              "updates/s\n",
              incremental_ms, incremental_ns_per_update, incremental_ups);
  std::printf("  monitor state: %zu minimal key(s), %llu untouched "
              "updates, %llu repaired, %llu rebuilds\n",
              snapshot->minimal_keys().size(),
              static_cast<unsigned long long>((*monitor)->untouched_updates()),
              static_cast<unsigned long long>((*monitor)->repaired_updates()),
              static_cast<unsigned long long>((*monitor)->rebuilds()));

  // Sanity: the incrementally maintained frontier must equal one final
  // from-scratch enumeration against the monitor's own sample.
  KeyEnumerationOptions enum_options;
  enum_options.max_size = max_key_size;
  auto expected = EnumerateMinimalAcceptedSets(
      (*monitor)->filter(), table.num_attributes(), enum_options);
  QIKEY_CHECK(expected.ok());
  std::sort(expected->begin(), expected->end(), CanonicalAttributeSetLess);
  QIKEY_CHECK(*expected == snapshot->minimal_keys());

  // Baseline: to serve current keys after each update, a batch system
  // re-runs filter build + enumeration. Average a few rebuilds over the
  // final window instead of doing all `updates` of them.
  const Dataset window = (*monitor)->filter().WindowDataset();
  constexpr int kRebuildReps = 10;
  double rebuild_ms = 0.0;
  for (int rep = 0; rep < kRebuildReps; ++rep) {
    rebuild_ms += TimeFullRebuild(window, max_key_size, &rng);
  }
  rebuild_ms /= kRebuildReps;
  double rebuild_ns_per_update = rebuild_ms * 1e6;
  double rebuild_ups = 1e3 / rebuild_ms;
  double speedup = rebuild_ns_per_update / incremental_ns_per_update;
  std::printf("  full rebuild: %9.2f ms/update, %26.1f updates/s\n",
              rebuild_ms, rebuild_ups);
  std::printf("  incremental speedup over rebuild-per-update: %.1fx\n",
              speedup);
  QIKEY_CHECK(speedup > 1.0);

  BenchJsonWriter json;
  BenchJsonWriter::Params common = {
      {"rows", std::to_string(rows)},
      {"updates", std::to_string(updates)},
      {"max_key_size", std::to_string(max_key_size)},
      {"backend", "tuple"},
  };
  json.Add("monitor_update", common, incremental_ns_per_update,
           incremental_ups);
  json.Add("full_rebuild_per_update", common, rebuild_ns_per_update,
           rebuild_ups);
  BenchJsonWriter::Params speedup_params = common;
  speedup_params.push_back({"speedup", std::to_string(speedup)});
  json.Add("monitor_speedup", speedup_params, 0.0, speedup);
  if (!json.WriteToFile(json_path)) return 1;
  return 0;
}

}  // namespace
}  // namespace qikey

int main(int argc, char** argv) {
  uint64_t rows = 20000;
  uint64_t updates = 4000;
  uint32_t max_key_size = 4;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (std::strcmp(argv[i], "--rows") == 0) {
      const char* v = next();
      if (v && !qikey::ParseUint64Flag("--rows", v, &rows)) return 2;
    } else if (std::strcmp(argv[i], "--updates") == 0) {
      const char* v = next();
      if (v && !qikey::ParseUint64Flag("--updates", v, &updates)) return 2;
    } else if (std::strcmp(argv[i], "--max-size") == 0) {
      const char* v = next();
      long long k = 0;
      if (v) {
        if (!qikey::ParseIntFlag("--max-size", v, 1, 64, &k)) return 2;
        max_key_size = static_cast<uint32_t>(k);
      }
    } else if (std::strcmp(argv[i], "--json") == 0) {
      const char* v = next();
      if (v) json_path = v;
    } else {
      std::fprintf(stderr,
                   "usage: bench_monitor [--rows N] [--updates U] "
                   "[--max-size K] [--json PATH]\n");
      return 2;
    }
  }
  if (rows < 2 || updates == 0) {
    std::fprintf(stderr, "need --rows >= 2 and --updates >= 1\n");
    return 2;
  }
  return qikey::Run(rows, updates, max_key_size, json_path);
}
