// Serve-layer throughput: one discovery snapshot, many concurrent
// requests.
//
//   cold: batched is-key over distinct attribute sets, verdict cache
//         disabled — every query runs the filter kernel (bitset
//         backend), fanned out by the engine's ThreadPool.
//   hot:  the same engine with the sharded LRU verdict cache enabled
//         and pre-warmed — batches resolve entirely in the parallel
//         cache sweep.
//
// Reports queries/sec at 1..8 threads plus the hot-path hit rate, and
// (on runners with >= 8 hardware threads) asserts the acceptance gate:
// cache-off throughput must rise monotonically from 1 through 8
// threads and reach >= 3x the single-thread figure at 8, and the
// cached path must still scale >= 2x by 4 threads. The monotonic half
// is the anti-scaling regression guard: the old per-chunk Submit path
// got SLOWER as threads were added. Also self-checks that cold and hot
// answers are identical — the cache must never change verdicts.
// Emits a `serve_env` row recording the runner's hardware threads so
// ci/check_bench_regression.py can re-assert the anti-scaling gate
// from the JSON alone.
//
//   ./bench_serve [--json PATH] [--rows N]

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_json.h"
#include "data/generators/tabular.h"
#include "engine/pipeline.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "util/flag_parse.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

namespace qikey {
namespace {

/// 64-attribute survey-like table (the wide regime the bitset block
/// kernel targets; same mix as bench_filter_query).
Dataset MakeWideTable(uint64_t rows, Rng* rng) {
  TabularSpec spec;
  spec.num_rows = rows;
  for (int j = 0; j < 64; ++j) {
    AttributeSpec attr;
    // += instead of "a" + to_string: gcc 12 -Wrestrict FP (PR105651).
    attr.name = "a";
    attr.name += std::to_string(j);
    switch (j % 4) {
      case 0:
        attr.cardinality = 2;
        break;
      case 1:
        attr.cardinality = 8;
        attr.zipf_exponent = 0.8;
        break;
      case 2:
        attr.cardinality = 64;
        attr.zipf_exponent = 0.5;
        break;
      default:
        attr.cardinality = 1024;
        break;
    }
    spec.attributes.push_back(attr);
  }
  return MakeTabular(spec, rng);
}

std::vector<QueryRequest> MakeIsKeyBatch(size_t m, size_t batch,
                                         size_t distinct, uint64_t seed) {
  Rng rng(seed);
  std::vector<AttributeSet> pool;
  pool.reserve(distinct);
  for (size_t i = 0; i < distinct; ++i) {
    pool.push_back(AttributeSet::RandomOfSize(m, 8, &rng));
  }
  std::vector<QueryRequest> requests;
  requests.reserve(batch);
  for (size_t i = 0; i < batch; ++i) {
    QueryRequest request;
    request.kind = QueryKind::kIsKey;
    request.attrs = pool[rng.Uniform(distinct)];
    requests.push_back(std::move(request));
  }
  return requests;
}

/// Queries/sec of `rounds` ExecuteBatch passes (one warm pass first).
double MeasureQps(const QueryEngine& engine,
                  const std::vector<QueryRequest>& requests, size_t rounds) {
  (void)engine.ExecuteBatch(requests);
  Timer timer;
  for (size_t r = 0; r < rounds; ++r) {
    (void)engine.ExecuteBatch(requests);
  }
  double millis = timer.ElapsedMillis();
  return 1e3 * static_cast<double>(rounds * requests.size()) / millis;
}

}  // namespace
}  // namespace qikey

int main(int argc, char** argv) {
  using namespace qikey;

  std::string json_path;
  uint64_t rows = 20000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc) {
      if (!ParseUint64Flag("--rows", argv[++i], &rows)) return 2;
    }
  }

  Rng rng(2024);
  Dataset data = MakeWideTable(rows, &rng);

  // Build once (the expensive step the serving split amortizes away),
  // publish, then everything below is pure query traffic.
  PipelineOptions options;
  options.eps = 0.001;
  options.backend = FilterBackend::kBitset;
  options.num_threads = 0;
  Rng pipeline_rng(7);
  auto result = DiscoveryPipeline(options).Run(data, &pipeline_rng);
  QIKEY_CHECK(result.ok()) << result.status().ToString();
  auto snapshot = SnapshotFromPipelineResult(*result, options.eps);
  QIKEY_CHECK(snapshot.ok()) << snapshot.status().ToString();
  SnapshotStore store;
  QIKEY_CHECK(store.Publish(std::move(*snapshot)).ok());
  std::printf("serving %s\n", store.Current()->Describe().c_str());

  const size_t kBatch = 4096;
  const size_t kDistinct = 512;
  std::vector<QueryRequest> workload =
      MakeIsKeyBatch(64, kBatch, kDistinct, 99);

  BenchJsonWriter json;
  unsigned hardware = std::thread::hardware_concurrency();
  // The anti-scaling gate (and the CI re-check over the JSON) reads
  // hardware parallelism from this row; the regression checker skips it
  // in baseline comparisons since it describes the runner, not the code.
  json.Add("serve_env", {{"hardware_threads", std::to_string(hardware)}},
           hardware, hardware);
  std::vector<std::pair<size_t, double>> cold_by_threads;
  double hot_qps_1 = 0.0, hot_qps_4 = 0.0;
  double hit_rate = 0.0;

  std::printf("\nbatched is-key, %zu requests over %zu distinct sets:\n",
              kBatch, kDistinct);
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    QueryEngineOptions cold_options;
    cold_options.num_threads = threads;
    cold_options.cache_capacity = 0;
    QueryEngine cold(&store, cold_options);
    double cold_qps = MeasureQps(cold, workload, 4);

    QueryEngineOptions hot_options;
    hot_options.num_threads = threads;
    hot_options.cache_capacity = 16384;
    hot_options.cache_shards = 64;
    QueryEngine hot(&store, hot_options);
    double hot_qps = MeasureQps(hot, workload, 16);
    double total = static_cast<double>(hot.cache_hits() + hot.cache_misses());
    hit_rate = total > 0 ? static_cast<double>(hot.cache_hits()) / total : 0;

    // The cache must be answer-transparent.
    std::vector<QueryResponse> cold_answers = cold.ExecuteBatch(workload);
    std::vector<QueryResponse> hot_answers = hot.ExecuteBatch(workload);
    for (size_t i = 0; i < workload.size(); ++i) {
      QIKEY_CHECK(cold_answers[i].verdict == hot_answers[i].verdict)
          << "cache changed a verdict at request " << i;
    }

    std::printf("  threads=%zu  cold %12.0f q/s   hot %12.0f q/s  "
                "(hit rate %.3f)\n",
                threads, cold_qps, hot_qps, hit_rate);
    json.Add("serve_query_batch",
             {{"threads", std::to_string(threads)}, {"cache", "off"}},
             1e9 / cold_qps, cold_qps);
    json.Add("serve_query_batch",
             {{"threads", std::to_string(threads)}, {"cache", "on"}},
             1e9 / hot_qps, hot_qps);
    cold_by_threads.emplace_back(threads, cold_qps);
    if (threads == 1) hot_qps_1 = hot_qps;
    if (threads == 4) hot_qps_4 = hot_qps;
  }
  json.Add("serve_cache_hit_rate", {{"threads", "8"}}, hit_rate, hit_rate);

  // Scaling ratios go to stdout (and the gate), not the JSON: the
  // regression checker reads ns_per_op as lower-is-better, which is
  // backwards for a ratio.
  double cold_qps_1 = cold_by_threads.front().second;
  double cold_scaling = cold_by_threads.back().second / cold_qps_1;
  double hot_scaling = hot_qps_4 / hot_qps_1;
  std::printf("\n1 -> 8 thread cold scaling %.2fx, 1 -> 4 hot %.2fx "
              "(hardware threads: %u)\n",
              cold_scaling, hot_scaling, hardware);

  // Persist before any fatal gate so a tripped gate still uploads the
  // numbers that explain it.
  if (!json.WriteToFile(json_path)) return 1;

  if (hardware >= 8) {
    // Anti-scaling guard: every added thread must help on the cold
    // path. Before the batched-task ParallelFor this curve INVERTED
    // (530 ns/op at 1 thread to 954 at 8); monotonicity is the
    // property, the 3x floor is the magnitude.
    for (size_t i = 1; i < cold_by_threads.size(); ++i) {
      auto [prev_threads, prev_qps] = cold_by_threads[i - 1];
      auto [threads, qps] = cold_by_threads[i];
      QIKEY_CHECK(qps >= prev_qps)
          << "uncached batched throughput fell from " << prev_qps << " q/s at "
          << prev_threads << " threads to " << qps << " q/s at " << threads;
    }
    QIKEY_CHECK(cold_scaling >= 3.0)
        << "uncached batched throughput scaled only " << cold_scaling
        << "x from 1 to 8 threads";
    QIKEY_CHECK(hot_scaling >= 2.0)
        << "cached batched throughput scaled only " << hot_scaling
        << "x from 1 to 4 threads";
  } else {
    std::printf("scaling gate skipped (< 8 hardware threads)\n");
  }
  return 0;
}
