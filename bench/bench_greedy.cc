// Proposition 1 / Appendix B: approximate minimum eps-separation key.
//
// Compares, on Adult-like and Covtype-like data:
//   - this paper's pipeline: r = m/sqrt(eps) tuples + partition-refine
//     greedy with the lookup-table gain (O(m^3/sqrt(eps)));
//   - the same pipeline with the sort-based gain (the "simplest
//     approach", O(m^3 log(..)/sqrt(eps)));
//   - the Motwani–Xu pipeline: s = m/eps pairs + bitset greedy set
//     cover (O(m^3/eps)).
// Reports wall time, solution size, and the exact separation ratio of
// each returned key, plus (small-m config) the exact optimum for the
// approximation-quality check.

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "core/bruteforce.h"
#include "core/minkey.h"
#include "core/separation.h"
#include "data/generators/tabular.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

namespace qikey {
namespace {

void RunConfig(const char* name, const TabularSpec& spec, double eps,
               uint64_t seed, bool with_exact) {
  Rng rng(seed);
  Dataset d = MakeTabular(spec, &rng);
  const uint32_t m = static_cast<uint32_t>(d.num_attributes());
  std::printf("\n%s: n=%zu m=%u eps=%g\n", name, d.num_rows(), m, eps);
  std::printf("  %-28s %10s %8s %12s %10s\n", "method", "sample", "|key|",
              "time (s)", "sep-ratio");

  auto report = [&](const char* method, const MinKeyResult& r, double secs) {
    double ratio = SeparationRatio(d, r.key);
    std::printf("  %-28s %10" PRIu64 " %8zu %12.3f %10.6f\n", method,
                r.sample_size, r.key.size(), secs, ratio);
  };

  {
    Rng run_rng(seed + 1);
    MinKeyOptions opts;
    opts.eps = eps;
    opts.gain_strategy = GainStrategy::kLookupTable;
    Timer timer;
    auto r = FindApproxMinimumEpsKey(d, opts, &run_rng);
    double secs = timer.ElapsedSeconds();
    QIKEY_CHECK(r.ok());
    report("tuples + refine (lookup)", *r, secs);
  }
  {
    Rng run_rng(seed + 1);
    MinKeyOptions opts;
    opts.eps = eps;
    opts.gain_strategy = GainStrategy::kSortPartition;
    Timer timer;
    auto r = FindApproxMinimumEpsKey(d, opts, &run_rng);
    double secs = timer.ElapsedSeconds();
    QIKEY_CHECK(r.ok());
    report("tuples + refine (sort)", *r, secs);
  }
  {
    Rng run_rng(seed + 2);
    MinKeyOptions opts;
    opts.eps = eps;
    Timer timer;
    auto r = FindApproxMinimumEpsKeyMx(d, opts, &run_rng);
    double secs = timer.ElapsedSeconds();
    QIKEY_CHECK(r.ok());
    report("MX pairs + set cover", *r, secs);
  }
  if (with_exact) {
    Timer timer;
    auto exact = ExactMinimumEpsKey(d, eps, 6);
    double secs = timer.ElapsedSeconds();
    if (exact.ok()) {
      std::printf("  %-28s %10s %8zu %12.3f %10s\n", "exact (brute force)",
                  "-", exact->size(), secs, "-");
    } else {
      std::printf("  exact search found no eps-key of size <= 6\n");
    }
  }
}

}  // namespace
}  // namespace qikey

int main() {
  std::printf("Proposition 1: approximate minimum eps-separation key — "
              "engines and baselines\n");

  qikey::TabularSpec adult = qikey::AdultLikeSpec();
  qikey::RunConfig("Adult-like", adult, 0.001, 51, /*with_exact=*/true);

  qikey::TabularSpec covtype = qikey::CovtypeLikeSpec();
  covtype.num_rows = 200000;  // scaled: greedy cost is sample-bound anyway
  qikey::RunConfig("Covtype-like (n=200k)", covtype, 0.001, 52,
                   /*with_exact=*/false);

  // eps sweep on the adult profile: smaller eps -> bigger samples; the
  // lookup engine's advantage grows with the sample size.
  qikey::TabularSpec sweep = qikey::AdultLikeSpec();
  sweep.num_rows = 32561;
  for (double eps : {0.01, 0.0001}) {
    qikey::RunConfig("Adult-like (eps sweep)", sweep, eps, 53,
                     /*with_exact=*/false);
  }
  std::printf("\nReading: lookup vs sort shows the Algorithm-3 speedup; "
              "tuple methods match MX solution\nquality with ~sqrt(eps) "
              "fewer samples and correspondingly faster cover phases.\n");
  return 0;
}
