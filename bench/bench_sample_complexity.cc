// Validates the Theorem 1 upper bound: sampling r = Θ(m/√ε) tuples
// suffices to reject bad attribute sets, on the hardest profile the KKT
// analysis allows (the planted clique of Lemma 4). For each (m, eps) we
// sweep the sample size around the paper's r = m/√ε and report the
// empirical detection rate of the planted bad attribute together with
// the closed-form prediction 1 - P_no-collision.
//
// Expected shape: detection ≈ 63% at the "half" budget, > 99.9% at the
// paper budget for larger m, and the closed form tracks the empirical
// rate within Monte-Carlo noise.

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/sample_bounds.h"
#include "core/tuple_sample_filter.h"
#include "data/generators/planted_clique.h"
#include "math/collision.h"
#include "util/logging.h"
#include "util/rng.h"

namespace qikey {
namespace {

void RunConfig(uint32_t m, double eps, uint64_t n, int trials, Rng* rng) {
  PlantedCliqueOptions opts;
  opts.num_rows = n;
  opts.num_attributes = m;
  opts.epsilon = eps;
  Dataset d = MakePlantedClique(opts, rng);
  AttributeSet bad = AttributeSet::FromIndices(m, {0});
  uint64_t clique = PlantedCliqueSize(n, eps);
  uint64_t r_paper = TupleSampleSizePaper(m, eps);

  std::printf("\nm=%u eps=%g n=%" PRIu64 " planted-clique=%" PRIu64
              "  (paper sample r=m/sqrt(eps)=%" PRIu64 ")\n",
              m, eps, n, clique, r_paper);
  std::printf("  %10s %12s %14s %14s\n", "r", "r/r_paper", "detect(empir)",
              "detect(closed)");

  std::vector<double> fractions{0.125, 0.25, 0.5, 1.0, 2.0};
  for (double frac : fractions) {
    uint64_t r = std::max<uint64_t>(
        2, static_cast<uint64_t>(frac * static_cast<double>(r_paper)));
    if (r > n) continue;
    // Closed form for the (clique, 1, 1, ..., 1) profile, using the
    // O(r) two-value evaluation.
    double p_detect_closed =
        1.0 - std::exp(LogNonCollisionWithoutReplacementTwoValue(
                  static_cast<double>(clique), 1, 1.0, n - clique, r));

    int detected = 0;
    for (int t = 0; t < trials; ++t) {
      TupleSampleFilterOptions fopt;
      fopt.eps = eps;
      fopt.sample_size = r;
      auto f = TupleSampleFilter::Build(d, fopt, rng);
      QIKEY_CHECK(f.ok());
      detected += (f->Query(bad) == FilterVerdict::kReject);
    }
    std::printf("  %10" PRIu64 " %12.3f %13.1f%% %13.1f%%\n", r, frac,
                100.0 * detected / trials, 100.0 * p_detect_closed);
  }
}

}  // namespace
}  // namespace qikey

int main() {
  std::printf("Theorem 1 upper bound: detection of a bad attribute vs "
              "tuple-sample size\n(planted-clique hard instance of "
              "Lemma 4)\n");
  qikey::Rng rng(4242);
  qikey::RunConfig(/*m=*/8, /*eps=*/0.01, /*n=*/50000, /*trials=*/400,
                   &rng);
  qikey::RunConfig(/*m=*/16, /*eps=*/0.01, /*n=*/50000, /*trials=*/400,
                   &rng);
  qikey::RunConfig(/*m=*/16, /*eps=*/0.001, /*n=*/200000, /*trials=*/200,
                   &rng);
  qikey::RunConfig(/*m=*/32, /*eps=*/0.001, /*n=*/200000, /*trials=*/100,
                   &rng);
  std::printf("\nReading: at r = r_paper the detection rate should be "
              "effectively 1 and the\nclosed form should match the "
              "empirical column within sampling noise.\n");
  return 0;
}
