// Validates Theorem 2 end to end:
//  (a) upper bound — the uniform-sampling sketch of Θ(k log m/(α ε²))
//      pairs answers (1±ε)-estimates of Γ_A for dense A;
//  (b) size — sketch bytes scale linearly in k and 1/ε², and sit above
//      the Ω(mk log(1/ε)) lower-bound curve;
//  (c) lower-bound mechanics — Bob's decoder recovers Alice's matrix
//      from sketch answers on the Section 3.2 encoding data set.

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "core/separation.h"
#include "core/sketch.h"
#include "core/theory.h"
#include "data/generators/encoding_lb.h"
#include "data/generators/tabular.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stats.h"

namespace qikey {
namespace {

void AccuracySweep() {
  std::printf("(a) Estimation accuracy on tabular data (n=20000, m=8)\n");
  Rng rng(11);
  TabularSpec spec;
  spec.num_rows = 20000;
  spec.attributes = {
      {"g2", 2, 0.3, -1, 0.0},   {"g3", 3, 0.5, -1, 0.0},
      {"g8", 8, 0.8, -1, 0.0},   {"g20", 20, 0.6, -1, 0.0},
      {"g50", 50, 1.0, -1, 0.0}, {"g200", 200, 0.4, -1, 0.0},
      {"echo", 8, 0.0, 2, 0.1},  {"g1000", 1000, 0.2, -1, 0.0},
  };
  Dataset d = MakeTabular(spec, &rng);
  const uint32_t m = 8, k = 3;
  const double alpha = 0.01;

  std::printf("  %8s %12s %14s %14s %12s\n", "eps", "pairs", "max rel-err",
              "mean rel-err", "bytes");
  for (double eps : {0.2, 0.1, 0.05}) {
    NonSeparationSketchOptions opts;
    opts.k = k;
    opts.alpha = alpha;
    opts.eps = eps;
    opts.big_k = 4.0;
    auto sketch = NonSeparationSketch::Build(d, opts, &rng);
    QIKEY_CHECK(sketch.ok());
    RunningStats err;
    Rng qrng(12);
    int evaluated = 0;
    for (int t = 0; t < 200 && evaluated < 60; ++t) {
      AttributeSet a =
          AttributeSet::RandomOfSize(m, 1 + qrng.Uniform(k), &qrng);
      uint64_t truth = ExactUnseparatedPairs(d, a);
      if (static_cast<double>(truth) <
          alpha * static_cast<double>(d.num_pairs())) {
        continue;  // below the guarantee threshold
      }
      NonSeparationEstimate est = sketch->Estimate(a);
      QIKEY_CHECK(!est.small);
      err.Add(std::abs(est.estimate - static_cast<double>(truth)) /
              static_cast<double>(truth));
      ++evaluated;
    }
    std::printf("  %8g %12" PRIu64 " %13.2f%% %13.2f%% %12" PRIu64 "\n", eps,
                sketch->sample_size(), 100.0 * err.max(),
                100.0 * err.mean(), sketch->SizeBytes());
  }
  std::printf("  -> max relative error stays below eps; pairs and bytes "
              "grow as 1/eps^2.\n\n");
}

void SizeScaling() {
  std::printf("(b) Sketch size vs the Ω(mk log 1/eps) lower bound "
              "(m=64 binary attrs, n=4096)\n");
  Rng rng(13);
  TabularSpec spec;
  spec.num_rows = 4096;
  for (int j = 0; j < 64; ++j) {
    // += instead of "b" + to_string: gcc 12 -Wrestrict FP (PR105651).
    std::string name = "b";
    name += std::to_string(j);
    spec.attributes.push_back({std::move(name), 2, 0.2, -1, 0.0});
  }
  Dataset d = MakeTabular(spec, &rng);
  std::printf("  %6s %8s %14s %22s %8s\n", "k", "eps", "sketch bytes",
              "LB mk*log2(1/eps)/8 B", "ratio");
  for (uint32_t k : {2u, 4u, 8u}) {
    for (double eps : {0.2, 0.05}) {
      NonSeparationSketchOptions opts;
      opts.k = k;
      opts.alpha = 0.25;
      opts.eps = eps;
      auto sketch = NonSeparationSketch::Build(d, opts, &rng);
      QIKEY_CHECK(sketch.ok());
      double lb_bytes = 64.0 * k * std::log2(1.0 / eps) / 8.0;
      std::printf("  %6u %8g %14" PRIu64 " %22.0f %8.1f\n", k, eps,
                  sketch->SizeBytes(), lb_bytes,
                  static_cast<double>(sketch->SizeBytes()) / lb_bytes);
    }
  }
  std::printf("  -> the sampling sketch is a poly(1/eps, log m) factor "
              "above the information-theoretic floor,\n     matching "
              "Theorem 2's gap (tight only in m and k).\n\n");
}

void DecodingDemo() {
  std::printf("(c) Section 3.2 decoding: Bob reconstructs Alice's C from "
              "sketch answers\n");
  Rng rng(14);
  const uint32_t k = 2, t = 3, m = 6;
  const uint32_t n = k * t;
  BitMatrix c = MakeRandomColumnSparseMatrix(k, t, m, &rng);
  Dataset d = MakeEncodingDataset(c);
  NonSeparationSketchOptions opts;
  opts.k = k + 1;
  opts.alpha = 1.0 / 16.0;
  opts.eps = 0.05;
  opts.sample_size = 300000;
  auto sketch = NonSeparationSketch::Build(d, opts, &rng);
  QIKEY_CHECK(sketch.ok());
  auto oracle = [&](const AttributeSet& attrs) {
    return sketch->Estimate(attrs);
  };
  uint64_t total_bits = 0, wrong_bits = 0;
  int exact_cols = 0;
  for (uint32_t col = 0; col < m; ++col) {
    std::vector<uint8_t> truth(n);
    for (uint32_t r = 0; r < n; ++r) truth[r] = c.at(r, col);
    std::vector<uint8_t> decoded =
        DecodeEncodingColumn(oracle, col, m, n, k, t, opts.eps);
    wrong_bits += HammingDistance(truth, decoded);
    total_bits += n;
    exact_cols += (decoded == truth) ? 1 : 0;
  }
  std::printf("  n=%u (k=%u, t=%u), m=%u columns: %d/%u columns exact, "
              "bit error %.1f%% (budget |C|/10t = %.1f%%)\n\n",
              n, k, t, m, exact_cols, m,
              100.0 * static_cast<double>(wrong_bits) /
                  static_cast<double>(total_bits),
              100.0 / (10.0 * t));
}

}  // namespace
}  // namespace qikey

int main() {
  std::printf("Theorem 2: non-separation estimation — sketch accuracy, "
              "size, and the encoding lower bound\n\n");
  qikey::AccuracySweep();
  qikey::SizeScaling();
  qikey::DecodingDemo();
  return 0;
}
