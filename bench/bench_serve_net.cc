// Open-loop loopback latency for the qikey serve network server.
//
// An in-process `ServeServer` (ephemeral port) is loaded with one
// discovery snapshot; C client connections each fire a mixed QIKEY/1
// workload on a FIXED schedule (open loop: send times are set in
// advance, so a slow server accumulates queueing delay instead of
// silently slowing the load generator — no coordinated omission).
// Latency for request i is (response received) − (scheduled send),
// pooled across connections into p50/p99/p999.
//
// Every response byte is also diffed against the shared encoder run
// directly on the engine — the bench aborts on the first divergence,
// so the latency numbers can never come from wrong answers.
//
// The load runs TWICE against the same warmed engine: once with the
// default (baked-in) instrumentation only, once with an external
// metrics registry attached and request tracing sampled at 1/64 — the
// configuration `qikey serve --stats-interval-sec ... --trace-sample`
// runs in production. Both passes are reported (params:
// instrumentation=idle|on) so CI can flag when the observability layer
// itself regresses request latency.
//
//   ./bench_serve_net [--json PATH] [--conns C] [--rps R] [--per-conn N]
//
// Defaults are sized for a small CI box (4 conns x 500 requests at
// 2000 req/s aggregate ≈ 1 s of load, per pass).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "data/generators/tabular.h"
#include "engine/pipeline.h"
#include "obs/metrics.h"
#include "serve/protocol.h"
#include "serve/query_engine.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "util/flag_parse.h"
#include "util/net.h"
#include "util/rng.h"

namespace qikey {
namespace {

using Clock = std::chrono::steady_clock;

/// 16-attribute table: wide enough for varied attribute sets, small
/// enough that snapshot discovery is a startup blip.
Dataset MakeTable(uint64_t rows, Rng* rng) {
  TabularSpec spec;
  spec.num_rows = rows;
  for (int j = 0; j < 16; ++j) {
    AttributeSpec attr;
    attr.name = "a";
    attr.name += std::to_string(j);
    attr.cardinality = (j % 3 == 0) ? 1024 : 8;
    spec.attributes.push_back(attr);
  }
  return MakeTabular(spec, rng);
}

/// A deterministic mixed wire workload (is-key heavy, like a serving
/// tier; every line parses against `schema`).
std::vector<std::string> MakeWorkload(const Schema& schema, size_t count,
                                      uint64_t seed) {
  Rng rng(seed);
  size_t m = schema.num_attributes();
  std::vector<std::string> lines;
  lines.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    uint32_t pick = rng.Uniform(10);
    if (pick < 6) {
      AttributeSet attrs = AttributeSet::RandomOfSize(m, 4, &rng);
      std::string line = "is-key ";
      bool first = true;
      for (AttributeIndex a : attrs.ToIndices()) {
        if (!first) line += ',';
        line += schema.name(a);
        first = false;
      }
      lines.push_back(std::move(line));
    } else if (pick < 8) {
      lines.push_back("min-key");
    } else {
      AttributeSet attrs = AttributeSet::RandomOfSize(m, 2, &rng);
      std::string line = "separation ";
      bool first = true;
      for (AttributeIndex a : attrs.ToIndices()) {
        if (!first) line += ',';
        line += schema.name(a);
        first = false;
      }
      lines.push_back(std::move(line));
    }
  }
  return lines;
}

struct ConnResult {
  std::vector<double> latency_ns;
  size_t mismatches = 0;
  bool io_error = false;
};

/// One open-loop connection: a sender thread walks the fixed schedule,
/// the calling thread receives and timestamps. Responses arrive in
/// request order (server guarantee for admitted lines).
void RunConnection(uint16_t port, const std::vector<std::string>& lines,
                   const std::vector<std::string>& expected,
                   Clock::time_point start, double interval_ns,
                   ConnResult* out) {
  auto fd = OpenClientSocket({"127.0.0.1", port}, /*recv_timeout_ms=*/30000);
  if (!fd.ok()) {
    out->io_error = true;
    return;
  }
  BlockingLineClient client(std::move(*fd));
  auto greeting = client.RecvLine();
  if (!greeting.ok()) {
    out->io_error = true;
    return;
  }

  std::thread sender([&] {
    for (size_t i = 0; i < lines.size(); ++i) {
      std::this_thread::sleep_until(
          start + std::chrono::nanoseconds(
                      static_cast<int64_t>(interval_ns * i)));
      if (!client.SendLine(lines[i]).ok()) return;
    }
  });

  out->latency_ns.reserve(lines.size());
  for (size_t i = 0; i < lines.size(); ++i) {
    auto got = client.RecvLine();
    Clock::time_point now = Clock::now();
    if (!got.ok()) {
      out->io_error = true;
      break;
    }
    if (*got != expected[i]) ++out->mismatches;
    Clock::time_point scheduled =
        start + std::chrono::nanoseconds(
                    static_cast<int64_t>(interval_ns * i));
    out->latency_ns.push_back(
        std::chrono::duration<double, std::nano>(now - scheduled).count());
  }
  sender.join();
}

double Quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  size_t index = static_cast<size_t>(q * (sorted.size() - 1));
  return sorted[index];
}

int Run(int argc, char** argv) {
  std::string json_path;
  size_t conns = 4;
  size_t per_conn = 500;
  double rps = 2000.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--conns") == 0 && i + 1 < argc) {
      uint64_t v = 0;
      if (!ParseUint64Flag("--conns", argv[++i], &v)) return 2;
      conns = static_cast<size_t>(v);
    } else if (std::strcmp(argv[i], "--per-conn") == 0 && i + 1 < argc) {
      uint64_t v = 0;
      if (!ParseUint64Flag("--per-conn", argv[++i], &v)) return 2;
      per_conn = static_cast<size_t>(v);
    } else if (std::strcmp(argv[i], "--rps") == 0 && i + 1 < argc) {
      if (!ParseDoubleFlag("--rps", argv[++i], 0.0, 1e9,
                           /*min_exclusive=*/true, /*max_exclusive=*/false,
                           "(0, 1e9]", &rps)) {
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: bench_serve_net [--json PATH] [--conns C] "
                   "[--rps R] [--per-conn N]\n");
      return 2;
    }
  }
  if (conns == 0 || per_conn == 0 || rps <= 0.0) {
    std::fprintf(stderr, "conns, per-conn, and rps must be positive\n");
    return 2;
  }

  // Snapshot + engine + server.
  Rng rng(17);
  Dataset data = MakeTable(20000, &rng);
  PipelineOptions popts;
  popts.eps = 0.001;
  popts.backend = FilterBackend::kBitset;
  Rng prng(29);
  auto result = DiscoveryPipeline(popts).Run(data, &prng);
  if (!result.ok()) {
    std::fprintf(stderr, "pipeline: %s\n", result.status().ToString().c_str());
    return 1;
  }
  auto snapshot = SnapshotFromPipelineResult(*result, popts.eps);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "snapshot: %s\n",
                 snapshot.status().ToString().c_str());
    return 1;
  }
  SnapshotStore store;
  if (!store.Publish(std::move(*snapshot)).ok()) return 1;
  QueryEngineOptions eopts;
  eopts.num_threads = 1;
  QueryEngine engine(&store, eopts);

  // Per-connection workloads and the answers the server must produce.
  std::vector<std::vector<std::string>> workloads, expectations;
  for (size_t c = 0; c < conns; ++c) {
    workloads.push_back(MakeWorkload(data.schema(), per_conn, 1000 + c));
    std::vector<QueryRequest> requests;
    for (const std::string& line : workloads.back()) {
      auto request = ParseQueryRequest(line, data.schema());
      if (!request.ok()) {
        std::fprintf(stderr, "workload line does not parse: %s\n",
                     line.c_str());
        return 1;
      }
      requests.push_back(std::move(*request));
    }
    std::vector<QueryResponse> responses = engine.ExecuteBatch(requests);
    std::vector<std::string> expected;
    for (size_t i = 0; i < requests.size(); ++i) {
      expected.push_back(
          EncodeResponseLine(requests[i], responses[i], data.schema()));
    }
    expectations.push_back(std::move(expected));
  }

  // One measured pass: fresh server over the shared warmed engine,
  // open-loop load, pooled quantiles. `instrumented` attaches an
  // external registry and 1-in-64 request tracing (discarded sink) —
  // the production observability configuration.
  struct PassResult {
    double p50 = 0, p99 = 0, p999 = 0, qps = 0;
  };
  auto run_pass = [&](bool instrumented, PassResult* pr) -> int {
    ServerOptions sopts;
    sopts.listen = {"127.0.0.1", 0};
    // Generous admission caps: this bench measures latency under load
    // the server can admit; sheds would poison the latency pool.
    sopts.max_pending_per_conn = per_conn + 1;
    sopts.max_pending_global = conns * (per_conn + 1);
    MetricsRegistry registry;
    if (instrumented) {
      sopts.metrics = &registry;
      sopts.trace_sample = 64;
      sopts.trace_sink = [](const std::string&) {};  // format, then drop
    }
    ServeServer server(&engine, data.schema(), sopts);
    Status started = server.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "server: %s\n", started.ToString().c_str());
      return 1;
    }

    double interval_ns = 1e9 * static_cast<double>(conns) / rps;
    std::vector<ConnResult> results(conns);
    Clock::time_point start = Clock::now() + std::chrono::milliseconds(50);
    std::vector<std::thread> threads;
    for (size_t c = 0; c < conns; ++c) {
      threads.emplace_back([&, c] {
        RunConnection(server.port(), workloads[c], expectations[c], start,
                      interval_ns, &results[c]);
      });
    }
    for (std::thread& thread : threads) thread.join();
    Clock::time_point end = Clock::now();
    server.Shutdown();
    server.Join();

    std::vector<double> pooled;
    size_t mismatches = 0;
    bool io_error = false;
    for (const ConnResult& r : results) {
      pooled.insert(pooled.end(), r.latency_ns.begin(), r.latency_ns.end());
      mismatches += r.mismatches;
      io_error |= r.io_error;
    }
    if (io_error || pooled.size() != conns * per_conn) {
      std::fprintf(stderr, "bench I/O failure: %zu/%zu responses\n",
                   pooled.size(), conns * per_conn);
      return 1;
    }
    if (mismatches > 0) {
      std::fprintf(stderr,
                   "SELF-CHECK FAILED: %zu response(s) diverged from the "
                   "direct engine encoding\n",
                   mismatches);
      return 1;
    }
    std::sort(pooled.begin(), pooled.end());

    double wall_s = std::chrono::duration<double>(end - start).count();
    pr->qps = static_cast<double>(pooled.size()) / wall_s;
    pr->p50 = Quantile(pooled, 0.50);
    pr->p99 = Quantile(pooled, 0.99);
    pr->p999 = Quantile(pooled, 0.999);
    return 0;
  };

  PassResult idle, on;
  if (int rc = run_pass(/*instrumented=*/false, &idle)) return rc;
  if (int rc = run_pass(/*instrumented=*/true, &on)) return rc;

  BenchJsonWriter json;
  std::printf("serve_net: %zu conns x %zu reqs, offered %.0f req/s per "
              "pass\n",
              conns, per_conn, rps);
  struct Q {
    const char* name;
    double PassResult::* field;
  } quantiles[] = {{"p50", &PassResult::p50},
                   {"p99", &PassResult::p99},
                   {"p999", &PassResult::p999}};
  for (const Q& q : quantiles) {
    double idle_ns = idle.*(q.field);
    double on_ns = on.*(q.field);
    double overhead =
        idle_ns > 0 ? 100.0 * (on_ns - idle_ns) / idle_ns : 0.0;
    std::printf("  %-5s idle %10.1f us   instrumented %10.1f us   "
                "overhead %+6.2f%%\n",
                q.name, idle_ns / 1e3, on_ns / 1e3, overhead);
    json.Add("serve_net_latency",
             {{"quantile", q.name}, {"instrumentation", "idle"}}, idle_ns,
             idle.qps);
    json.Add("serve_net_latency",
             {{"quantile", q.name}, {"instrumentation", "on"}}, on_ns,
             on.qps);
  }
  if (!json.WriteToFile(json_path)) return 1;
  return 0;
}

}  // namespace
}  // namespace qikey

int main(int argc, char** argv) { return qikey::Run(argc, argv); }
