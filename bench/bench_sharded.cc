// Sharded out-of-core discovery: build speedup and bounded memory.
//
// Part 1 — scale-out: the merged filter is built from a CSV file at 1,
// 2, 4, and 8 shards (one worker thread per shard). Parse + encode
// dominate ingest, shards parse record-aligned byte ranges
// independently, so build time should drop near-linearly until the
// core count is exhausted. The expectation is asserted only when the
// hardware can express it (>= 4 cores).
//
// Part 2 — out-of-core: the same file is ingested through the
// bounded-memory streaming path at growing input sizes with a fixed
// chunk size. Peak tracked bytes (chunk + dictionaries + merged
// filter) must stay flat as the input grows, and a run with
// --memory-budget set to a quarter of the file size must finish within
// it — the input is 4x the budget by construction.
//
// Part 3 — self-check: in the exact regime the sharded pipeline must
// emit the same key as the single-process pipeline.
//
//   ./bench_sharded [--rows N] [--json PATH]

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "data/csv_loader.h"
#include "data/generators/tabular.h"
#include "engine/pipeline.h"
#include "shard/filter_merger.h"
#include "shard/shard_builder.h"
#include "util/flag_parse.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

namespace qikey {
namespace {

std::string WriteCsvFile(const Dataset& d, const char* name) {
  std::string path = std::string("/tmp/qikey_bench_sharded_") + name + ".csv";
  QIKEY_CHECK_OK(SaveCsvDataset(d, path));
  return path;
}

uint64_t FileSize(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return static_cast<uint64_t>(in.tellg());
}

/// Linux peak RSS (VmHWM) in bytes, 0 if unavailable — printed as
/// context next to the tracked-bytes accounting.
uint64_t PeakRssBytes() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      char* end = nullptr;
      return std::strtoull(line.c_str() + 6, &end, 10) * 1024;
    }
  }
  return 0;
}

double BuildMergedOnce(const std::string& path, size_t shards) {
  ShardedBuildOptions build;
  build.eps = 0.001;
  build.num_shards = shards;
  build.num_threads = shards;
  build.seed = 7;
  Timer timer;
  auto artifacts = BuildShardArtifactsFromCsv(path, build);
  QIKEY_CHECK(artifacts.ok()) << artifacts.status().ToString();
  FilterMerger::Options merge_options;
  merge_options.tuple_sample_size =
      TupleSampleSizePaper(
          static_cast<uint32_t>((*artifacts)[0].tuple_sample.num_attributes()),
          build.eps);
  merge_options.seed = 8;
  FilterMerger merger(merge_options);
  for (auto& a : *artifacts) QIKEY_CHECK_OK(merger.Add(std::move(a)));
  auto merged = std::move(merger).Finish();
  QIKEY_CHECK(merged.ok()) << merged.status().ToString();
  double ms = timer.ElapsedMillis();
  QIKEY_CHECK(merged->tuple_filter->sample_size() ==
              merge_options.tuple_sample_size);
  return ms;
}

}  // namespace
}  // namespace qikey

int main(int argc, char** argv) {
  using namespace qikey;
  uint64_t rows = 200000;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc) {
      if (!ParseUint64Flag("--rows", argv[++i], &rows)) return 2;
    }
  }
  BenchJsonWriter json;

  Rng rng(2024);
  TabularSpec spec = AdultLikeSpec();
  spec.num_rows = rows;
  Dataset table = MakeTabular(spec, &rng);
  std::string path = WriteCsvFile(table, "main");
  uint64_t file_bytes = FileSize(path);
  unsigned hw = std::thread::hardware_concurrency();
  std::printf("sharded build: %" PRIu64 " rows x %zu attributes, %.1f MiB "
              "CSV, %u hardware threads\n",
              rows, table.num_attributes(), file_bytes / 1048576.0, hw);

  // Part 1: build speedup vs shard count.
  std::printf("  %8s %12s %10s\n", "shards", "build (ms)", "speedup");
  double serial_ms = 0.0;
  double best_speedup = 0.0;
  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    double ms = BuildMergedOnce(path, shards);
    if (shards == 1) serial_ms = ms;
    double speedup = serial_ms / ms;
    best_speedup = std::max(best_speedup, speedup);
    std::printf("  %8zu %12.1f %9.2fx\n", shards, ms, speedup);
    json.Add("sharded_build",
             {{"shards", std::to_string(shards)}},
             ms * 1e6, 1e3 / ms);
  }
  if (hw >= 8) {
    // Enough cores to express the claim: demand >= 3x at 8 shards
    // (45% parallel efficiency after the sequential boundary scan).
    QIKEY_CHECK(best_speedup >= 3.0)
        << "8-shard speedup " << best_speedup << "x below the 3x target";
  } else if (hw >= 4) {
    // Shared 4-vCPU CI runners: wall-clock contention makes a hard
    // gate flaky, so the expectation is advisory (annotated, not
    // fatal) — mirroring check_bench_regression.py.
    double want = 0.45 * hw;
    if (best_speedup < want) {
      std::printf("::warning::8-shard speedup %.2fx below the %.1fx "
                  "expected of %u cores\n", best_speedup, want, hw);
    }
  } else {
    std::printf("  (only %u hardware thread(s): speedup assertion skipped)\n",
                hw);
  }

  // Part 2: flat peak memory vs input size (fixed chunk), then a hard
  // budget of a quarter of the file with the full input.
  std::printf("\nout-of-core ingest (chunks of 4096 rows)\n");
  std::printf("  %10s %12s %16s\n", "rows", "file (MiB)", "peak tracked");
  uint64_t peak_small = 0, peak_large = 0;
  for (uint64_t part : {rows / 4, rows / 2, rows}) {
    TabularSpec sub = AdultLikeSpec();
    sub.num_rows = part;
    Rng sub_rng(31);
    Dataset d = MakeTabular(sub, &sub_rng);
    std::string sub_path = WriteCsvFile(d, "part");
    PipelineOptions options;
    options.eps = 0.001;
    ShardedRunOptions sharded;
    sharded.shard_rows = 4096;
    DiscoveryPipeline pipeline(options);
    auto result = pipeline.RunSharded(sub_path, sharded, 5);
    QIKEY_CHECK(result.ok()) << result.status().ToString();
    if (part == rows / 4) peak_small = result->peak_tracked_bytes;
    if (part == rows) peak_large = result->peak_tracked_bytes;
    std::printf("  %10" PRIu64 " %12.1f %13.2f MiB\n", part,
                FileSize(sub_path) / 1048576.0,
                result->peak_tracked_bytes / 1048576.0);
    json.Add("sharded_ingest_peak",
             {{"rows", std::to_string(part)}},
             static_cast<double>(result->peak_tracked_bytes), 0.0);
  }
  // Flat: 4x the input must not cost 2x the (dictionary-dominated) peak.
  QIKEY_CHECK(peak_large <= 2 * peak_small)
      << "peak tracked bytes grew with input size: " << peak_small << " -> "
      << peak_large;

  uint64_t budget = file_bytes / 4;
  if (peak_large <= budget - budget / 5) {
    PipelineOptions options;
    options.eps = 0.001;
    ShardedRunOptions sharded;
    sharded.shard_rows = 4096;
    sharded.memory_budget_bytes = budget;
    DiscoveryPipeline pipeline(options);
    auto result = pipeline.RunSharded(path, sharded, 5);
    QIKEY_CHECK(result.ok())
        << "budgeted ingest failed: " << result.status().ToString();
    QIKEY_CHECK(result->peak_tracked_bytes <= budget);
    std::printf("  budget %.1f MiB on a %.1f MiB input (4x): peak %.2f MiB, "
                "VmHWM %.1f MiB\n",
                budget / 1048576.0, file_bytes / 1048576.0,
                result->peak_tracked_bytes / 1048576.0,
                PeakRssBytes() / 1048576.0);
    json.Add("sharded_budget",
             {{"budget_bytes", std::to_string(budget)}},
             static_cast<double>(result->peak_tracked_bytes), 0.0);
  } else {
    // The ingest floor (the dictionary) does not shrink with the
    // budget; with a tiny input a quarter of the file cannot hold it.
    // The default --rows gives the budget demo plenty of headroom.
    std::printf("  (input too small for the 4x-budget demo: floor %.2f MiB "
                "vs budget %.2f MiB; rerun with more --rows)\n",
                peak_large / 1048576.0, budget / 1048576.0);
  }

  // Part 3: exact-regime equivalence with the single-process pipeline.
  {
    TabularSpec sub = AdultLikeSpec();
    sub.num_rows = 5000;
    Rng sub_rng(77);
    Dataset d = MakeTabular(sub, &sub_rng);
    PipelineOptions options;
    options.eps = 0.001;
    options.sample_size = d.num_rows();
    DiscoveryPipeline pipeline(options);
    Rng run_rng(9);
    auto single = pipeline.Run(d, &run_rng);
    QIKEY_CHECK(single.ok());
    ShardedRunOptions sharded;
    sharded.num_shards = 8;
    auto multi = pipeline.RunSharded(d, sharded, 13);
    QIKEY_CHECK(multi.ok());
    QIKEY_CHECK(multi->key == single->key)
        << "sharded pipeline diverged from the single-process key";
    std::printf("\nself-check: 8-shard exact-regime key == single-process "
                "key (%zu attributes)\n",
                single->key.size());
  }

  std::printf("\nReading: build time should fall near-linearly with shard "
              "count up to the core\ncount; peak tracked bytes should stay "
              "flat as the input grows and fit the budget.\n");
  if (!json.WriteToFile(json_path)) return 1;
  return 0;
}
