#ifndef QIKEY_BENCH_BENCH_JSON_H_
#define QIKEY_BENCH_BENCH_JSON_H_

// Shared machine-readable output for the standalone benches: collect
// (name, params, ns/op, throughput) records and write one BENCH_*.json
// file for CI to archive, e.g.
//
//   {"benchmarks": [
//     {"name": "monitor_update", "params": {"backend": "tuple"},
//      "ns_per_op": 1234.5, "ops_per_sec": 810045.2}
//   ]}
//
// Header-only on purpose: benches are standalone main() programs and
// this keeps them that way.

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace qikey {

class BenchJsonWriter {
 public:
  using Params = std::vector<std::pair<std::string, std::string>>;

  /// Records one result. `ns_per_op` and `ops_per_sec` describe the
  /// same measurement from both directions so consumers don't have to
  /// re-derive either.
  void Add(const std::string& name, const Params& params, double ns_per_op,
           double ops_per_sec) {
    Entry entry;
    entry.name = name;
    entry.params = params;
    entry.ns_per_op = ns_per_op;
    entry.ops_per_sec = ops_per_sec;
    entries_.push_back(std::move(entry));
  }

  std::string ToJson() const {
    std::string out = "{\"benchmarks\": [\n";
    for (size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      out += "  {\"name\": " + Quote(e.name) + ", \"params\": {";
      for (size_t p = 0; p < e.params.size(); ++p) {
        out += Quote(e.params[p].first) + ": " + Quote(e.params[p].second);
        if (p + 1 < e.params.size()) out += ", ";
      }
      char numbers[96];
      std::snprintf(numbers, sizeof(numbers),
                    "}, \"ns_per_op\": %.3f, \"ops_per_sec\": %.3f}",
                    e.ns_per_op, e.ops_per_sec);
      out += numbers;
      if (i + 1 < entries_.size()) out += ",";
      out += "\n";
    }
    out += "]}\n";
    return out;
  }

  /// Writes the collected records; returns false (with a message on
  /// stderr) if the file cannot be written. No-op when `path` is empty.
  bool WriteToFile(const std::string& path) const {
    if (path.empty()) return true;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write bench json to %s\n", path.c_str());
      return false;
    }
    std::string json = ToJson();
    size_t written = std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    if (written != json.size()) {
      std::fprintf(stderr, "short write to %s\n", path.c_str());
      return false;
    }
    return true;
  }

 private:
  struct Entry {
    std::string name;
    Params params;
    double ns_per_op = 0.0;
    double ops_per_sec = 0.0;
  };

  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += "\"";
    return out;
  }

  std::vector<Entry> entries_;
};

}  // namespace qikey

#endif  // QIKEY_BENCH_BENCH_JSON_H_
