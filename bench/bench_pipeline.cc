// Batched-parallel filter queries and the end-to-end discovery
// pipeline.
//
// Part 1 compares, for both filter backends, one-Query-per-candidate
// serial loops against QueryBatch fanned out over a ThreadPool — the
// workload candidate-set enumeration generates per level. Part 2 times
// DiscoveryPipeline end to end (sample / filter / greedy / minimize /
// verify) at 1 and N threads.
//
//   ./bench_pipeline [max_threads] [--json PATH]
//
// With --json, machine-readable results are written for CI to archive
// (see bench_json.h).

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "core/bitset_filter.h"
#include "core/mx_pair_filter.h"
#include "core/tuple_sample_filter.h"
#include "data/generators/tabular.h"
#include "engine/pipeline.h"
#include "util/flag_parse.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace qikey {
namespace {

void RecordQueries(BenchJsonWriter* json, const char* filter,
                   const std::string& mode, size_t num_queries, double ms) {
  json->Add("query_batch",
            {{"filter", filter}, {"mode", mode}},
            ms * 1e6 / num_queries, num_queries / ms * 1e3);
}

void BenchBatchedQueries(const Dataset& d, const SeparationFilter& filter,
                         const char* name, size_t max_threads,
                         BenchJsonWriter* json) {
  const size_t m = d.num_attributes();
  Rng qrng(7);
  std::vector<AttributeSet> queries;
  for (int i = 0; i < 512; ++i) {
    queries.push_back(AttributeSet::RandomOfSize(m, 8, &qrng));
  }

  Timer timer;
  std::vector<FilterVerdict> serial;
  serial.reserve(queries.size());
  for (const AttributeSet& q : queries) serial.push_back(filter.Query(q));
  double serial_ms = timer.ElapsedMillis();
  std::printf("  %-22s %8s %12.2f %10.1f %8s\n", name, "serial", serial_ms,
              queries.size() / serial_ms * 1e3, "1.00x");
  RecordQueries(json, name, "serial", queries.size(), serial_ms);

  timer.Restart();
  std::vector<FilterVerdict> batched = filter.QueryBatch(queries, nullptr);
  double batch1_ms = timer.ElapsedMillis();
  QIKEY_CHECK(batched == serial);
  std::printf("  %-22s %8s %12.2f %10.1f %7.2fx\n", name, "batch/1",
              batch1_ms, queries.size() / batch1_ms * 1e3,
              serial_ms / batch1_ms);
  RecordQueries(json, name, "batch/1", queries.size(), batch1_ms);

  for (size_t t = 2; t <= max_threads; t *= 2) {
    ThreadPool pool(t);
    // Warm the pool so thread start-up cost is not billed to the batch.
    ThreadPool::ParallelFor(&pool, t, [](size_t, size_t) {});
    timer.Restart();
    std::vector<FilterVerdict> parallel = filter.QueryBatch(queries, &pool);
    double ms = timer.ElapsedMillis();
    QIKEY_CHECK(parallel == serial);
    char label[32];
    std::snprintf(label, sizeof(label), "batch/%zu", t);
    std::printf("  %-22s %8s %12.2f %10.1f %7.2fx\n", name, label, ms,
                queries.size() / ms * 1e3, serial_ms / ms);
    RecordQueries(json, name, label, queries.size(), ms);
  }
}

void BenchPipeline(const Dataset& d, FilterBackend backend, const char* name,
                   size_t max_threads, BenchJsonWriter* json) {
  for (size_t t = 1; t <= max_threads; t *= 2) {
    PipelineOptions options;
    options.eps = 0.001;
    options.backend = backend;
    options.num_threads = t;
    DiscoveryPipeline pipeline(options);
    Rng rng(99);
    auto result = pipeline.Run(d, &rng);
    QIKEY_CHECK(result.ok());
    std::printf("  %-22s %4zu thr %12.2f   |key|=%zu%s", name, t,
                result->total_millis, result->key.size(),
                result->verdict == FilterVerdict::kAccept ? "" : " REJECTED");
    for (const PipelineStage& s : result->stages) {
      std::printf("  %s=%.1f", s.name.c_str(), s.millis);
    }
    std::printf("\n");
    json->Add("pipeline_run",
              {{"backend", name}, {"threads", std::to_string(t)}},
              result->total_millis * 1e6,
              1e3 / result->total_millis);
  }
}

}  // namespace
}  // namespace qikey

int main(int argc, char** argv) {
  size_t max_threads = 0;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      long long t = 0;
      if (!qikey::ParseIntFlag("max_threads", argv[i], 0, 1 << 16, &t)) {
        return 2;
      }
      max_threads = static_cast<size_t>(t);
    }
  }
  if (max_threads == 0) max_threads = std::thread::hardware_concurrency();
  if (max_threads == 0) max_threads = 4;

  qikey::Rng rng(2024);
  qikey::TabularSpec spec = qikey::CovtypeLikeSpec();
  spec.num_rows = 100000;
  qikey::Dataset d = qikey::MakeTabular(spec, &rng);
  std::printf("batched filter queries: n=%zu m=%zu eps=0.001, 512 queries "
              "of size 8, up to %zu threads\n",
              d.num_rows(), d.num_attributes(), max_threads);
  std::printf("  %-22s %8s %12s %10s %8s\n", "filter", "mode", "time (ms)",
              "q/s", "speedup");

  qikey::BenchJsonWriter json;
  qikey::MxPairFilterOptions mx_opts;
  mx_opts.eps = 0.001;
  auto mx = qikey::MxPairFilter::Build(d, mx_opts, &rng);
  QIKEY_CHECK(mx.ok());
  qikey::BenchBatchedQueries(d, *mx, "mx-pair", max_threads, &json);

  qikey::TupleSampleFilterOptions ts_opts;
  ts_opts.eps = 0.001;
  auto ts = qikey::TupleSampleFilter::Build(d, ts_opts, &rng);
  QIKEY_CHECK(ts.ok());
  qikey::BenchBatchedQueries(d, *ts, "tuple-sample", max_threads, &json);

  qikey::BitsetFilterOptions bs_opts;
  bs_opts.eps = 0.001;
  auto bs = qikey::BitsetSeparationFilter::Build(d, bs_opts, &rng);
  QIKEY_CHECK(bs.ok());
  qikey::BenchBatchedQueries(d, *bs, "bitset", max_threads, &json);

  std::printf("\nend-to-end discovery pipeline (same table)\n");
  std::printf("  %-22s %8s %12s\n", "backend", "threads", "total (ms)");
  qikey::BenchPipeline(d, qikey::FilterBackend::kTupleSample, "tuple-sample",
                       max_threads, &json);
  qikey::BenchPipeline(d, qikey::FilterBackend::kMxPair, "mx-pair",
                       max_threads, &json);
  qikey::BenchPipeline(d, qikey::FilterBackend::kBitset, "bitset",
                       max_threads, &json);

  std::printf("\nReading: QueryBatch at >= 4 threads should beat the serial "
              "loop; the pipeline's\ngreedy and minimize stages shrink with "
              "thread count while sample/verify stay flat.\nThe bitset "
              "backend trades a one-off packing cost at build for orders-of-"
              "magnitude\nfaster queries: it wins whenever the filter "
              "answers many candidates (enumeration,\nmonitor repair), "
              "which is the query_batch section above.\n");
  if (!json.WriteToFile(json_path)) return 1;
  return 0;
}
