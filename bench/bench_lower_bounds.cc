// Empirically exhibits both sampling lower bounds of Theorem 1.
//
// Lemma 3 (constant failure probability): on the uniform grid [q]^m,
// rejecting ALL m bad singletons with probability >= 1 - 1/e needs
// r = Ω(sqrt(log m / eps)) samples. We compute, per m, the smallest r
// whose all-singletons detection probability reaches 1 - 1/e (closed
// form, cross-checked by simulation) and compare with the curve.
//
// Lemma 4 (failure e^{-m}): on the planted-clique data set, rejecting
// the single bad attribute with probability >= 1 - e^{-m} needs
// r = Ω(m/sqrt(eps)). We compute the smallest sufficient r from the
// closed form and compare with m/sqrt(eps).

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "core/sample_bounds.h"
#include "core/tuple_sample_filter.h"
#include "data/generators/planted_clique.h"
#include "data/generators/uniform_grid.h"
#include "math/collision.h"
#include "util/logging.h"
#include "util/rng.h"

namespace qikey {
namespace {

// P(one fixed singleton of [q]^m detected with r i.i.d. samples)
//  = 1 - birthday-non-collision over q uniform bins.
double SingletonDetectProb(uint64_t q, uint64_t r) {
  if (r > q) return 1.0;
  double log_p = 0.0;
  for (uint64_t i = 1; i < r; ++i) {
    log_p += std::log1p(-static_cast<double>(i) / static_cast<double>(q));
  }
  return 1.0 - std::exp(log_p);
}

// Coordinates are independent, so
// P(all m singletons detected) = detect_one^m.
uint64_t SmallestRForAllSingletons(uint64_t q, uint32_t m, double target) {
  for (uint64_t r = 2; r <= q + 1; ++r) {
    double p_all = std::pow(SingletonDetectProb(q, r), m);
    if (p_all >= target) return r;
  }
  return q + 1;
}

void Lemma3Table() {
  std::printf("Lemma 3: samples needed to reject ALL m singleton subsets "
              "of [q]^m w.p. 1-1/e\n");
  const double target = 1.0 - 1.0 / std::exp(1.0);
  std::printf("  %6s %8s %10s %22s %8s\n", "m", "1/eps~q", "r_needed",
              "sqrt(log m / eps)", "ratio");
  for (uint64_t q : {1000u, 4000u}) {
    for (uint32_t m : {4u, 16u, 64u, 256u}) {
      uint64_t r = SmallestRForAllSingletons(q, m, target);
      double curve =
          std::sqrt(std::log(static_cast<double>(m)) * static_cast<double>(q));
      std::printf("  %6u %8" PRIu64 " %10" PRIu64 " %22.1f %8.2f\n", m, q, r,
                  curve, static_cast<double>(r) / curve);
    }
  }
  std::printf("  -> r_needed / sqrt(log m / eps) stays Θ(1): the bound is "
              "tight in this family.\n\n");
}

void Lemma3SimulationCheck() {
  // Cross-check the closed form by simulation at one configuration.
  const uint64_t q = 500;
  const uint32_t m = 8;
  Rng rng(7);
  Dataset d = MakeUniformGridSample(m, static_cast<uint32_t>(q), 200000, &rng);
  const double target = 1.0 - 1.0 / std::exp(1.0);
  uint64_t r = SmallestRForAllSingletons(q, m, target);
  int all_detected = 0;
  const int kTrials = 300;
  for (int t = 0; t < kTrials; ++t) {
    TupleSampleFilterOptions opts;
    opts.eps = 1.0 / static_cast<double>(q);
    opts.sample_size = r;
    auto f = TupleSampleFilter::Build(d, opts, &rng);
    QIKEY_CHECK(f.ok());
    bool all = true;
    for (AttributeIndex a = 0; a < m && all; ++a) {
      all = (f->Query(AttributeSet::FromIndices(m, {a})) ==
             FilterVerdict::kReject);
    }
    all_detected += all;
  }
  std::printf("Lemma 3 simulation check: q=%" PRIu64 " m=%u r=%" PRIu64
              ": empirical all-detect %.1f%% vs target %.1f%%\n\n",
              q, m, r, 100.0 * all_detected / kTrials, 100.0 * target);
}

void Lemma4Table() {
  std::printf("Lemma 4: samples needed to reject the planted bad attribute "
              "w.p. 1 - e^{-m}\n");
  std::printf("  %6s %10s %12s %14s %8s\n", "m", "eps", "r_needed",
              "m/sqrt(eps)", "ratio");
  const uint64_t n = 10000000;  // large n: the bound is n-independent
  for (double eps : {0.01, 0.001}) {
    for (uint32_t m : {4u, 8u, 16u, 32u, 64u}) {
      uint64_t clique = PlantedCliqueSize(n, eps);
      double target = 1.0 - std::exp(-static_cast<double>(m));
      // Binary search the smallest r with detection >= target.
      uint64_t lo = 2, hi = n / 2;
      while (lo < hi) {
        uint64_t mid = (lo + hi) / 2;
        double p_detect =
            1.0 - std::exp(LogNonCollisionWithoutReplacementTwoValue(
                      static_cast<double>(clique), 1, 1.0, n - clique, mid));
        if (p_detect >= target) {
          hi = mid;
        } else {
          lo = mid + 1;
        }
      }
      double curve = static_cast<double>(m) / std::sqrt(eps);
      std::printf("  %6u %10g %12" PRIu64 " %14.1f %8.2f\n", m, eps, lo,
                  curve, static_cast<double>(lo) / curve);
    }
  }
  std::printf("  -> r_needed grows linearly in m and as 1/sqrt(eps): the "
              "Θ(m/sqrt(eps)) bound is tight.\n");
}

}  // namespace
}  // namespace qikey

int main() {
  std::printf("Sampling lower bounds for the eps-separation key filter "
              "(Theorem 1, Lemmas 3 & 4)\n\n");
  qikey::Lemma3Table();
  qikey::Lemma3SimulationCheck();
  qikey::Lemma4Table();
  return 0;
}
